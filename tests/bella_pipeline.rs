//! Integration test: the full BELLA pipeline over simulated reads, CPU
//! vs GPU vs multi-GPU backends, with ground-truth scoring.

use logan::bella::{BellaConfig, BellaPipeline, PipelineBudget};
use logan::prelude::*;
use logan::seq::readsim::ReadSimulator;

fn readset() -> ReadSet {
    let sim = ReadSimulator {
        read_len: (800, 1200),
        errors: ErrorProfile::pacbio(0.10),
        ..ReadSimulator::uniform(20_000, 8.0)
    };
    sim.generate(777)
}

fn config() -> BellaConfig {
    BellaConfig {
        error_rate: 0.10,
        min_overlap: 600,
        ..BellaConfig::with_x(50)
    }
}

#[test]
fn all_backends_agree_and_find_overlaps() {
    let rs = readset();
    let pipeline = BellaPipeline::new(config());

    let cpu_aligner = XDropCpuAligner::new(4, Scoring::default(), 50, Engine::Scalar);
    let gpu = LoganExecutor::new(DeviceSpec::v100(), LoganConfig::with_x(50));
    let multi = MultiGpu::new(3, DeviceSpec::v100(), LoganConfig::with_x(50));

    let (cpu_out, cpu_metrics) = pipeline.run_on_readset(&rs, &cpu_aligner, 600);
    let (gpu_out, _) = pipeline.run_on_readset(&rs, &gpu, 600);
    let (mg_out, _) = pipeline.run_on_readset(&rs, &multi, 600);

    assert_eq!(cpu_out.kept_pairs(), gpu_out.kept_pairs());
    assert_eq!(cpu_out.kept_pairs(), mg_out.kept_pairs());
    assert!(cpu_out.stats.kept > 0);
    assert!(cpu_metrics.recall > 0.4, "recall {:.2}", cpu_metrics.recall);
    assert!(
        cpu_metrics.precision > 0.7,
        "precision {:.2}",
        cpu_metrics.precision
    );
}

#[test]
fn pipeline_is_deterministic() {
    let rs = readset();
    let pipeline = BellaPipeline::new(config());
    let aligner = XDropCpuAligner::new(2, Scoring::default(), 50, Engine::Scalar);
    let (a, _) = pipeline.run_on_readset(&rs, &aligner, 600);
    let (b, _) = pipeline.run_on_readset(&rs, &aligner, 600);
    assert_eq!(a.kept_pairs(), b.kept_pairs());
    assert_eq!(a.stats.total_cells, b.stats.total_cells);
}

/// The streaming-equivalence gate (scripts/premerge.sh runs the
/// `streaming_` tests as their own step): on a seeded read set, the
/// streaming, sharded, bounded-memory dataflow must reproduce the
/// monolithic pipeline bit for bit — same overlaps (scores, seeds, end
/// positions, kept flags, order) and same stage statistics.
#[test]
fn streaming_pipeline_diffs_clean_against_monolithic() {
    let rs = readset();
    let backend = XDropCpuAligner::new(4, Scoring::default(), 50, Engine::Scalar);

    let mono = BellaPipeline::new(config());
    let (mono_out, mono_metrics) = mono.run_on_readset(&rs, &backend, 600);

    for budget in [
        PipelineBudget::default(),
        PipelineBudget {
            batch_reads: 5,
            shards: 3,
            inflight_blocks: 1,
        },
    ] {
        let cfg = BellaConfig { budget, ..config() };
        let streaming = BellaPipeline::new(cfg);
        let (out, metrics) = streaming.run_streaming_on_readset(&rs, &backend, 600);
        assert_eq!(out.overlaps, mono_out.overlaps, "budget {budget:?}");
        assert_eq!(out.stats, mono_out.stats, "budget {budget:?}");
        assert_eq!(metrics.precision, mono_metrics.precision);
        assert_eq!(metrics.recall, mono_metrics.recall);
    }
}

/// Streaming from the FASTA batch reader matches streaming from the
/// in-memory read set: the pipeline cannot tell sources apart.
#[test]
fn streaming_from_fasta_batches_matches_in_memory_source() {
    use logan::seq::fasta::{write_fasta, FastaBatches, Record};
    use logan::seq::readsim::ReadBatch;

    let rs = readset();
    let records: Vec<Record> = rs
        .reads
        .iter()
        .map(|r| Record {
            id: format!("read{}", r.id),
            seq: r.seq.clone(),
        })
        .collect();
    let mut fasta = Vec::new();
    write_fasta(&mut fasta, &records, 70).unwrap();

    let cfg = BellaConfig {
        budget: PipelineBudget {
            batch_reads: 8,
            shards: 4,
            inflight_blocks: 2,
        },
        // run_streaming (not *_on_readset) takes depth/error from the
        // config, so pin them to the set's true values on both paths.
        depth: rs.depth(),
        error_rate: rs.error_rate,
        ..config()
    };
    let pipeline = BellaPipeline::new(cfg);
    let backend = XDropCpuAligner::new(2, Scoring::default(), 50, Engine::Scalar);

    let mut start_id = 0usize;
    let from_fasta = pipeline.run_streaming(
        FastaBatches::new(&fasta[..], 8).map(|batch| {
            let seqs: Vec<Seq> = batch
                .expect("generated FASTA parses")
                .into_iter()
                .map(|r| r.seq)
                .collect();
            let b = ReadBatch { start_id, seqs };
            start_id += b.seqs.len();
            b
        }),
        &backend,
    );
    let from_memory = pipeline.run_streaming(rs.seq_batches(8), &backend);
    assert_eq!(from_fasta.overlaps, from_memory.overlaps);
    assert_eq!(from_fasta.stats, from_memory.stats);
}

#[test]
fn no_candidates_on_unrelated_reads() {
    // Reads from two different random genomes share no reliable k-mers
    // (beyond vanishing chance), so the pipeline reports nothing.
    let a = ReadSimulator {
        read_len: (500, 700),
        ..ReadSimulator::uniform(5_000, 2.0)
    }
    .generate(1);
    let b = ReadSimulator {
        read_len: (500, 700),
        ..ReadSimulator::uniform(5_000, 2.0)
    }
    .generate(2);
    // Interleave one read from each genome: no true overlaps exist.
    let mut seqs = Vec::new();
    for i in 0..4 {
        seqs.push(a.reads[i].seq.clone());
        seqs.push(b.reads[i].seq.clone());
    }
    // Reads within one genome may overlap; check only cross-genome
    // pairs are absent. Build the pipeline on the mixed set:
    let pipeline = BellaPipeline::new(config());
    let (pairs, meta, _) = pipeline.candidates(&seqs);
    for ((r1, r2, _), _) in meta.iter().zip(&pairs) {
        // Even indices come from genome A, odd from genome B.
        assert_eq!(
            r1 % 2,
            r2 % 2,
            "cross-genome candidate {r1}~{r2} should not exist"
        );
    }
}
