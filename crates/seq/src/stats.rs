//! Summary statistics over read sets — used by the harness binaries to
//! print the data-set panel the paper describes in §VI-A, and by tests to
//! validate that generated data matches its nominal parameters.

use crate::readsim::{PairSet, ReadSet};
use serde::{Deserialize, Serialize};

/// Length statistics of a collection of sequences.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LengthStats {
    /// Number of sequences.
    pub count: usize,
    /// Shortest length.
    pub min: usize,
    /// Longest length.
    pub max: usize,
    /// Mean length.
    pub mean: f64,
    /// N50: length such that half of all bases live in sequences at
    /// least this long (the assembly-world summary statistic).
    pub n50: usize,
    /// Total bases.
    pub total: usize,
}

/// Compute [`LengthStats`] from raw lengths. Returns `None` on empty
/// input (there is no meaningful min/max/N50 of nothing).
pub fn length_stats(lengths: &[usize]) -> Option<LengthStats> {
    if lengths.is_empty() {
        return None;
    }
    let total: usize = lengths.iter().sum();
    let mut sorted = lengths.to_vec();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    let mut acc = 0usize;
    let mut n50 = *sorted.last().unwrap();
    for &l in &sorted {
        acc += l;
        if acc * 2 >= total {
            n50 = l;
            break;
        }
    }
    Some(LengthStats {
        count: lengths.len(),
        min: *sorted.last().unwrap(),
        max: sorted[0],
        mean: total as f64 / lengths.len() as f64,
        n50,
        total,
    })
}

/// Stats for a [`ReadSet`].
pub fn read_set_stats(rs: &ReadSet) -> LengthStats {
    let lengths: Vec<usize> = rs.reads.iter().map(|r| r.seq.len()).collect();
    length_stats(&lengths).expect("read set is never empty")
}

/// Stats over all sequences (queries and targets) of a [`PairSet`].
pub fn pair_set_stats(ps: &PairSet) -> LengthStats {
    let lengths: Vec<usize> = ps
        .pairs
        .iter()
        .flat_map(|p| [p.query.len(), p.target.len()])
        .collect();
    length_stats(&lengths).expect("pair set is never empty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::readsim::{PairSet, ReadSimulator};

    #[test]
    fn empty_gives_none() {
        assert!(length_stats(&[]).is_none());
    }

    #[test]
    fn single_element() {
        let s = length_stats(&[42]).unwrap();
        assert_eq!(s.min, 42);
        assert_eq!(s.max, 42);
        assert_eq!(s.n50, 42);
        assert_eq!(s.total, 42);
        assert!((s.mean - 42.0).abs() < 1e-12);
    }

    #[test]
    fn n50_definition() {
        // Lengths 10, 10, 10, 30: total 60; the 30 alone covers half.
        let s = length_stats(&[10, 10, 10, 30]).unwrap();
        assert_eq!(s.n50, 30);
        // Uniform lengths: N50 equals the common length.
        let u = length_stats(&[7; 13]).unwrap();
        assert_eq!(u.n50, 7);
    }

    #[test]
    fn pair_set_stats_cover_both_sides() {
        let ps = PairSet::generate(10, 0.15, 1);
        let s = pair_set_stats(&ps);
        assert_eq!(s.count, 20);
        assert!(s.min >= 2000, "reads should stay near template scale");
    }

    #[test]
    fn read_set_stats_match_simulator_bounds() {
        let sim = ReadSimulator {
            read_len: (1000, 2000),
            ..ReadSimulator::uniform(50_000, 5.0)
        };
        let rs = sim.generate(3);
        let s = read_set_stats(&rs);
        // Indels can push lengths slightly past the template bounds.
        assert!(s.min as f64 >= 1000.0 * 0.8);
        assert!(s.max as f64 <= 2000.0 * 1.2);
        assert_eq!(s.total, rs.reads.iter().map(|r| r.seq.len()).sum::<usize>());
    }
}
