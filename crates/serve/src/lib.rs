//! `logan-serve`: an always-on overlap/alignment service over any
//! [`logan_core::AlignBackend`].
//!
//! The batch pipeline answers "align this dataset"; this crate answers
//! "keep answering": many concurrent clients submit small alignment
//! requests, and the service must batch them well enough to keep the
//! simulated accelerators saturated while keeping per-request latency
//! bounded and no tenant starved. Three mechanisms do the work:
//!
//! - **Cross-request coalescing** ([`Coalescer`]): a free backend lane
//!   drains up to `batch_pairs` queued pairs — across as many requests
//!   as fit — into one submission, recovering device-sized batches from
//!   client-sized requests. Oversized requests split across batches and
//!   still get exactly one reply.
//! - **Admission control** ([`Admission`]): per-tenant in-flight quotas,
//!   refused with an explicit [`ServeError::OverQuota`] reply — never a
//!   silent drop.
//! - **A bounded submission queue**: the threaded [`Server`] blocks
//!   submitters at the bound (backpressure, the PR 4 idiom); the
//!   open-loop simulator ([`sim`]) sheds with an explicit outcome.
//!
//! Correctness and performance live in different harnesses on purpose.
//! The threaded [`Server`] proves the concurrent behavior — exactly-once
//! replies, graceful shutdown draining in-flight work, panic-safe lane
//! retirement — on real threads. The discrete-event simulator in
//! [`sim`] makes every *latency and throughput* claim on the simulated
//! clock, the repo's only performance time domain (the container is
//! single-core; threaded wall time would measure the host). Both run
//! the same coalescer and admission code, and the backends are
//! result-deterministic, so the differential suite can demand
//! bit-identical results against direct per-request alignment.

#![warn(missing_docs)]

pub mod admission;
pub mod coalesce;
pub mod config;
mod lock;
pub mod request;
pub mod server;
pub mod sim;

pub use admission::Admission;
pub use coalesce::{Batch, BatchSpan, Coalescer};
pub use config::ServeConfig;
pub use request::{
    AlignRequest, AlignResponse, Reply, ReplyHandle, RequestId, ServeError, TenantId,
};
pub use server::{ServeStats, Server};
pub use sim::{simulate, ArrivalProcess, SimConfig, SimOutcome, SimReport, SimRequest};
