//! Differential test harness for the backend/fleet seam, run as its own
//! premerge step (`backend-equivalence`): every [`AlignBackend`] — the
//! CPU pool, one simulated GPU, the statically partitioned multi-GPU
//! deployment, and the work-stealing heterogeneous fleet — must produce
//! bit-identical [`SeedExtendResult`]s for the same pairs, and the
//! fleet's dynamic schedule must be unobservable in every output: the
//! results are order-normalized back to input slots no matter which
//! worker stole which chunk.
//!
//! Scheduling is the one place real nondeterminism enters this codebase
//! (worker threads race for the queue), so the properties here are run
//! across random workloads *and* repeated runs — a determinism bug
//! shows up as a diff between two executions of the very same call.

use logan::prelude::*;
use proptest::prelude::*;

fn fleet_2gpu_cpu(x: i32) -> Fleet {
    let cfg = LoganConfig::with_x(x);
    Fleet::new(vec![
        Box::new(GpuBackend::new(
            LoganExecutor::new(DeviceSpec::v100(), cfg),
            1,
        )),
        Box::new(GpuBackend::new(
            LoganExecutor::new(DeviceSpec::v100(), cfg),
            1,
        )),
        Box::new(XDropCpuAligner::new(
            2,
            Scoring::default(),
            x,
            Engine::from_env(),
        )),
    ])
}

/// A deliberately skewed workload: a few long, low-error pairs (deep
/// extensions, heavy DP work) scattered among short and junk-identity
/// pairs (X-drop terminates almost immediately). Base counts poorly
/// predict cell counts here — the regime where static partitioning
/// strands devices idle.
fn skewed_pairs(seed: u64) -> Vec<ReadPair> {
    let mut pairs = PairSet::generate_with_lengths(40, 0.30, 400, 3000, seed).pairs;
    pairs.extend(PairSet::generate_with_lengths(6, 0.05, 4000, 6000, seed ^ 0xabcd).pairs);
    pairs.extend(PairSet::generate_with_lengths(20, 0.45, 2000, 5000, seed ^ 0x1234).pairs);
    // Interleave deterministically so heavy pairs are not contiguous.
    let mut order: Vec<usize> = (0..pairs.len()).collect();
    order.sort_by_key(|&i| (i * 7919) % pairs.len());
    order.into_iter().map(|i| pairs[i].clone()).collect()
}

/// The static `MultiGpu` path is the reference: fleet output (dynamic
/// *and* static schedule) must be bit-identical to it, on balanced and
/// skewed workloads.
#[test]
fn fleet_output_is_bit_identical_to_static_multi_gpu() {
    for (name, pairs) in [
        ("balanced", PairSet::generate(32, 0.15, 99).pairs),
        ("skewed", skewed_pairs(7)),
    ] {
        let x = 50;
        let multi = MultiGpu::new(3, DeviceSpec::v100(), LoganConfig::with_x(x));
        let (want, want_rep) = multi.align_pairs(&pairs);
        // The same devices under the dynamic schedule.
        let (dynamic, dyn_rep) = multi.fleet().align_pairs(&pairs);
        assert_eq!(dynamic, want, "{name}: dynamic fleet != static multi-GPU");
        assert_eq!(dyn_rep.total_cells, want_rep.total_cells, "{name}");
        // A heterogeneous fleet, still bit-identical.
        let het = fleet_2gpu_cpu(x);
        let (het_res, _) = het.align_pairs(&pairs);
        assert_eq!(het_res, want, "{name}: heterogeneous fleet diverged");
        let (het_static, _) = het.align_pairs_static(&pairs);
        assert_eq!(het_static, want, "{name}: heterogeneous static diverged");
    }
}

/// Repeated dynamic runs agree with themselves: worker interleaving
/// varies between executions, the output must not.
#[test]
fn dynamic_schedule_is_deterministic_across_runs() {
    let pairs = skewed_pairs(21);
    let fleet = fleet_2gpu_cpu(30);
    let (first, _) = fleet.align_pairs(&pairs);
    for _ in 0..4 {
        let (again, rep) = fleet.align_pairs(&pairs);
        assert_eq!(again, first, "rerun diverged");
        assert_eq!(rep.assignment_sizes.iter().sum::<usize>(), pairs.len());
    }
}

/// The full BELLA pipeline through a fleet backend — monolithic and
/// streaming (which drives all lanes concurrently) — matches the
/// single-backend run on overlaps, stats and metrics.
#[test]
fn bella_pipeline_through_fleet_matches_single_backend() {
    use logan::bella::{BellaConfig, BellaPipeline};
    use logan::seq::readsim::ReadSimulator;

    let sim = ReadSimulator {
        read_len: (800, 1300),
        errors: ErrorProfile::pacbio(0.10),
        ..ReadSimulator::uniform(18_000, 7.0)
    };
    let rs = sim.generate(4242);
    let cfg = BellaConfig {
        error_rate: 0.10,
        min_overlap: 600,
        ..BellaConfig::with_x(50)
    };
    let pipeline = BellaPipeline::new(cfg);
    let single = XDropCpuAligner::new(2, Scoring::default(), 50, Engine::from_env());
    let fleet = fleet_2gpu_cpu(50);
    let (want, want_metrics) = pipeline.run_on_readset(&rs, &single, 600);
    let (mono, mono_metrics) = pipeline.run_on_readset(&rs, &fleet, 600);
    assert_eq!(mono.overlaps, want.overlaps);
    assert_eq!(mono.stats, want.stats);
    assert_eq!(mono_metrics, want_metrics);
    let (stream, stream_metrics) = pipeline.run_streaming_on_readset(&rs, &fleet, 600);
    assert_eq!(
        stream.overlaps, want.overlaps,
        "multi-lane streaming diverged"
    );
    assert_eq!(stream.stats, want.stats);
    assert_eq!(stream_metrics, want_metrics);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The satellite property: across random seeds, sizes, error rates
    /// and X values — and whatever worker interleaving each execution
    /// happens to produce — a `fleet:2gpu+cpu` run equals the
    /// single-backend run bit-for-bit on all outputs.
    #[test]
    fn fleet_matches_single_backend_across_seeds(
        seed in 0u64..1_000_000,
        n in 1usize..48,
        err_pct in 2u32..40,
        x in 5i32..200,
    ) {
        let err = err_pct as f64 / 100.0;
        let pairs = PairSet::generate_with_lengths(n, err, 200, 2500, seed).pairs;
        let single = LoganExecutor::new(DeviceSpec::v100(), LoganConfig::with_x(x));
        let (want, want_rep) = single.align_pairs(&pairs);
        let fleet = fleet_2gpu_cpu(x);
        let (got, rep) = fleet.align_pairs(&pairs);
        prop_assert_eq!(&got, &want);
        prop_assert_eq!(rep.total_cells, want_rep.total_cells);
        prop_assert_eq!(rep.assignment_sizes.iter().sum::<usize>(), pairs.len());
        // And a second run, with a different interleaving, agrees too.
        let (again, _) = fleet.align_pairs(&pairs);
        prop_assert_eq!(again, want);
    }
}
