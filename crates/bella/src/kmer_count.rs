//! Canonical k-mer counting across a read set.

use crate::fxhash::FxHashMap;
use logan_seq::{KmerIter, Seq};

/// Count canonical k-mers over all reads. Multiple occurrences within
/// one read all count (as in BELLA's counter; the *reliable* window
/// later caps what survives).
pub fn count_kmers(reads: &[Seq], k: usize) -> FxHashMap<u64, u32> {
    let mut counts: FxHashMap<u64, u32> = FxHashMap::default();
    // Reserve roughly one slot per expected distinct k-mer (total bases,
    // capped to keep worst-case memory sane).
    let total: usize = reads.iter().map(|r| r.len()).sum();
    counts.reserve(total.min(1 << 24));
    for read in reads {
        for (_, km) in KmerIter::new(read, k) {
            *counts.entry(km.canonical().code).or_insert(0) += 1;
        }
    }
    counts
}

/// Histogram of multiplicities (index = multiplicity, capped), useful
/// for diagnostics and for choosing reliable bounds empirically.
pub fn multiplicity_histogram(counts: &FxHashMap<u64, u32>, cap: usize) -> Vec<u64> {
    let mut hist = vec![0u64; cap + 1];
    for &c in counts.values() {
        hist[(c as usize).min(cap)] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use logan_seq::readsim::{random_seq, ReadSimulator};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn seq(s: &str) -> Seq {
        Seq::from_str_strict(s).unwrap()
    }

    #[test]
    fn counts_are_strand_canonical() {
        // A read and its reverse complement contribute identically.
        let fwd = seq("ACGTTGCATGCAACGTT");
        let rc = fwd.reverse_complement();
        let a = count_kmers(std::slice::from_ref(&fwd), 5);
        let b = count_kmers(&[rc], 5);
        assert_eq!(a, b);
    }

    #[test]
    fn simple_multiplicities() {
        // "ACGTACGT" with k=4: ACGT (x2... appears at 0 and 4), CGTA, GTAC, TACG.
        let counts = count_kmers(&[seq("ACGTACGT")], 4);
        let acgt = logan_seq::Kmer::from_bases(seq("ACGT").as_slice())
            .canonical()
            .code;
        assert_eq!(counts[&acgt], 2);
        assert_eq!(counts.values().sum::<u32>(), 5, "5 k-mer positions total");
    }

    #[test]
    fn shared_kmers_across_reads_accumulate() {
        // Canonicalization can merge a k-mer with another position's
        // reverse complement, so individual counts are multiples of the
        // read multiplicity rather than exactly equal to it.
        let r = seq("ACGTTGCAACGGT");
        let per_read = count_kmers(std::slice::from_ref(&r), 8);
        let counts = count_kmers(&[r.clone(), r.clone(), r], 8);
        assert_eq!(counts.len(), per_read.len());
        for (code, c) in &counts {
            assert_eq!(*c, per_read[code] * 3);
        }
    }

    #[test]
    fn histogram_caps() {
        let r = seq("AAAAAAAAAA");
        let counts = count_kmers(&[r], 4); // poly-A k-mer, multiplicity 7
        let hist = multiplicity_histogram(&counts, 5);
        assert_eq!(hist[5], 1, "capped into the top bucket");
    }

    #[test]
    fn depth_drives_multiplicity_of_true_kmers() {
        // Error-free reads at depth ~8: genomic k-mers should show
        // multiplicities well above 1.
        let sim = ReadSimulator {
            read_len: (400, 600),
            errors: logan_seq::ErrorProfile::perfect(),
            ..ReadSimulator::uniform(5_000, 8.0)
        };
        let rs = sim.generate(3);
        let seqs: Vec<Seq> = rs.reads.iter().map(|r| r.seq.clone()).collect();
        let counts = count_kmers(&seqs, 17);
        let mean = counts.values().map(|&c| c as f64).sum::<f64>() / counts.len() as f64;
        assert!(mean > 4.0, "mean multiplicity {mean}");
        let mut rng = StdRng::seed_from_u64(1);
        let foreign = random_seq(17, &mut rng);
        // A random 17-mer almost surely absent.
        let code = logan_seq::Kmer::from_bases(foreign.as_slice())
            .canonical()
            .code;
        assert!(!counts.contains_key(&code) || counts[&code] < 3);
    }
}
