//! A minimal Fx-style hasher for integer-keyed maps.
//!
//! The Rust performance guide recommends `rustc-hash` for hot maps with
//! integer keys; rather than pull a dependency for ten lines, the
//! multiply-rotate algorithm is inlined here. k-mer codes are already
//! well-mixed 2-bit packings, and the k-mer count table is the hottest
//! map in the pipeline.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The FxHash state.
#[derive(Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut last = [0u8; 8];
            last[..rem.len()].copy_from_slice(rem);
            self.add(u64::from_le_bytes(last));
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

/// A `HashMap` keyed with FxHash.
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// A `HashSet` keyed with FxHash.
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u64, u32> = FxHashMap::default();
        for i in 0..10_000u64 {
            m.insert(i * 2654435761, i as u32);
        }
        assert_eq!(m.len(), 10_000);
        for i in 0..10_000u64 {
            assert_eq!(m[&(i * 2654435761)], i as u32);
        }
    }

    #[test]
    fn hash_is_deterministic_and_spreads() {
        let h = |v: u64| {
            let mut hh = FxHasher::default();
            hh.write_u64(v);
            hh.finish()
        };
        assert_eq!(h(42), h(42));
        assert_ne!(h(1), h(2));
        // Low bits of sequential keys must differ (table-index quality).
        let mask = 0xFFF;
        let set: FxHashSet<u64> = (0..512u64).map(|v| h(v) & mask).collect();
        assert!(set.len() > 350, "low-bit collisions: {}", 512 - set.len());
    }

    #[test]
    fn byte_writes_consistent() {
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3, 4, 5, 6, 7, 8]);
        let mut b = FxHasher::default();
        b.write_u64(u64::from_le_bytes([1, 2, 3, 4, 5, 6, 7, 8]));
        assert_eq!(a.finish(), b.finish());
        let mut c = FxHasher::default();
        c.write(&[1, 2, 3]);
        assert_ne!(c.finish(), a.finish());
    }
}
