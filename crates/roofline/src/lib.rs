//! # logan-roofline
//!
//! The instruction Roofline model (Williams et al. 2009; Ding & Williams
//! 2019) adapted to LOGAN, reproducing the paper's §VII analysis and
//! Fig. 13.
//!
//! The paper plots billions of *warp instructions* per second (y) against
//! operational intensity in warp instructions per HBM byte (x). Two
//! ceilings bound a kernel: the memory slope `OI × bandwidth` and the
//! INT32 issue-rate plateau. LOGAN additionally derives an *adapted*
//! ceiling (Eq. 1) that discounts the plateau by the average thread
//! occupancy of its anti-diagonal iterations — anti-diagonals narrower
//! than the block leave lanes idle, and no amount of tuning recovers
//! them.
//!
//! # Position in the workspace
//!
//! Reads [`logan_gpusim`]'s kernel counters
//! ([`logan_gpusim::KernelStats`]) and device specs; `logan-bench`'s
//! `fig13` binary renders the resulting plot. See `DESIGN.md` for the
//! full map.

#![warn(missing_docs)]

pub mod model;
pub mod report;

pub use model::{adapted_ceiling, InstructionRoofline, RooflinePoint};
pub use report::{ascii_plot, roofline_summary};
