//! Alignment traceback (CIGAR strings).
//!
//! LOGAN deliberately computes no traceback (§IV-A: only three
//! anti-diagonals are kept, which is what makes the memory footprint
//! O(band)). Downstream consumers of a real library still need base-level
//! alignments occasionally — e.g. to polish a consensus — so this module
//! provides a full-matrix Needleman–Wunsch with traceback for bounded
//! inputs, plus CIGAR utilities used by tests to validate scores
//! independently of the DP implementations.

use logan_seq::{Scoring, Seq};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One CIGAR operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CigarOp {
    /// Match or mismatch (consumes both).
    Diagonal,
    /// Insertion to the query (consumes query only).
    Insertion,
    /// Deletion from the query (consumes target only).
    Deletion,
}

/// A run-length encoded alignment path.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Cigar {
    ops: Vec<(u32, CigarOp)>,
}

impl Cigar {
    /// Append one op, merging with the last run.
    pub fn push(&mut self, op: CigarOp) {
        match self.ops.last_mut() {
            Some((n, last)) if *last == op => *n += 1,
            _ => self.ops.push((1, op)),
        }
    }

    /// The run-length encoded operations.
    pub fn runs(&self) -> &[(u32, CigarOp)] {
        &self.ops
    }

    /// Total query bases consumed.
    pub fn query_len(&self) -> usize {
        self.ops
            .iter()
            .filter(|(_, op)| *op != CigarOp::Deletion)
            .map(|(n, _)| *n as usize)
            .sum()
    }

    /// Total target bases consumed.
    pub fn target_len(&self) -> usize {
        self.ops
            .iter()
            .filter(|(_, op)| *op != CigarOp::Insertion)
            .map(|(n, _)| *n as usize)
            .sum()
    }

    /// Re-score this path against the sequences — the independent score
    /// oracle used in tests.
    pub fn score(&self, query: &Seq, target: &Seq, scoring: Scoring) -> i32 {
        let (mut i, mut j, mut s) = (0usize, 0usize, 0i32);
        for &(n, op) in &self.ops {
            for _ in 0..n {
                match op {
                    CigarOp::Diagonal => {
                        s += scoring.substitution(query[i] == target[j]);
                        i += 1;
                        j += 1;
                    }
                    CigarOp::Insertion => {
                        s += scoring.gap;
                        i += 1;
                    }
                    CigarOp::Deletion => {
                        s += scoring.gap;
                        j += 1;
                    }
                }
            }
        }
        s
    }
}

impl fmt::Display for Cigar {
    /// SAM-style rendering: `12M1I7M` (M covers both match and
    /// mismatch, as in classic CIGAR).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for &(n, op) in &self.ops {
            let c = match op {
                CigarOp::Diagonal => 'M',
                CigarOp::Insertion => 'I',
                CigarOp::Deletion => 'D',
            };
            write!(f, "{n}{c}")?;
        }
        Ok(())
    }
}

/// Global alignment with traceback. Quadratic memory — intended for
/// bounded inputs (consensus windows, validation); panics above a size
/// guard to protect callers from accidental multi-GB matrices.
pub fn nw_traceback(query: &Seq, target: &Seq, scoring: Scoring) -> (i32, Cigar) {
    let m = query.len();
    let n = target.len();
    assert!(
        m.saturating_mul(n) <= 64_000_000,
        "nw_traceback is quadratic-memory; inputs too large ({m} x {n})"
    );
    let q = query.as_slice();
    let t = target.as_slice();

    // 0 = diag, 1 = up (insertion), 2 = left (deletion).
    let mut score = vec![0i32; (m + 1) * (n + 1)];
    let mut from = vec![0u8; (m + 1) * (n + 1)];
    let idx = |i: usize, j: usize| i * (n + 1) + j;
    for j in 1..=n {
        score[idx(0, j)] = j as i32 * scoring.gap;
        from[idx(0, j)] = 2;
    }
    for i in 1..=m {
        score[idx(i, 0)] = i as i32 * scoring.gap;
        from[idx(i, 0)] = 1;
        for j in 1..=n {
            let diag = score[idx(i - 1, j - 1)] + scoring.substitution(q[i - 1] == t[j - 1]);
            let up = score[idx(i - 1, j)] + scoring.gap;
            let left = score[idx(i, j - 1)] + scoring.gap;
            let (best, dir) = if diag >= up && diag >= left {
                (diag, 0u8)
            } else if up >= left {
                (up, 1)
            } else {
                (left, 2)
            };
            score[idx(i, j)] = best;
            from[idx(i, j)] = dir;
        }
    }

    let mut ops_rev = Vec::new();
    let (mut i, mut j) = (m, n);
    while i > 0 || j > 0 {
        match from[idx(i, j)] {
            0 => {
                ops_rev.push(CigarOp::Diagonal);
                i -= 1;
                j -= 1;
            }
            1 => {
                ops_rev.push(CigarOp::Insertion);
                i -= 1;
            }
            _ => {
                ops_rev.push(CigarOp::Deletion);
                j -= 1;
            }
        }
    }
    let mut cigar = Cigar::default();
    for op in ops_rev.into_iter().rev() {
        cigar.push(op);
    }
    (score[idx(m, n)], cigar)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::full::needleman_wunsch;
    use logan_seq::readsim::random_seq;
    use logan_seq::{ErrorModel, ErrorProfile};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn seq(s: &str) -> Seq {
        Seq::from_str_strict(s).unwrap()
    }

    #[test]
    fn identical_is_all_match() {
        let s = seq("ACGTACGT");
        let (score, cigar) = nw_traceback(&s, &s, Scoring::default());
        assert_eq!(score, 8);
        assert_eq!(cigar.to_string(), "8M");
    }

    #[test]
    fn single_indel_cigar() {
        let q = seq("ACGTACGT");
        let t = seq("ACGACGT"); // T deleted at position 3
        let (score, cigar) = nw_traceback(&q, &t, Scoring::default());
        assert_eq!(score, 7 - 1);
        assert_eq!(cigar.query_len(), q.len());
        assert_eq!(cigar.target_len(), t.len());
        let ins: u32 = cigar
            .runs()
            .iter()
            .filter(|(_, op)| *op == CigarOp::Insertion)
            .map(|(n, _)| *n)
            .sum();
        assert_eq!(ins, 1);
    }

    #[test]
    fn traceback_score_matches_dp_and_rescore() {
        let mut rng = StdRng::seed_from_u64(1);
        let model = ErrorModel::new(ErrorProfile::pacbio(0.12));
        for _ in 0..20 {
            let template = random_seq(150, &mut rng);
            let (a, _) = model.corrupt(&template, &mut rng);
            let (b, _) = model.corrupt(&template, &mut rng);
            let (score, cigar) = nw_traceback(&a, &b, Scoring::default());
            // Same optimum as the rolling-row NW...
            assert_eq!(score, needleman_wunsch(&a, &b, Scoring::default()).score);
            // ...and the path re-scores to exactly that value.
            assert_eq!(cigar.score(&a, &b, Scoring::default()), score);
            assert_eq!(cigar.query_len(), a.len());
            assert_eq!(cigar.target_len(), b.len());
        }
    }

    #[test]
    fn empty_sides() {
        let (score, cigar) = nw_traceback(&Seq::new(), &seq("ACG"), Scoring::default());
        assert_eq!(score, -3);
        assert_eq!(cigar.to_string(), "3D");
        let (score2, cigar2) = nw_traceback(&seq("ACG"), &Seq::new(), Scoring::default());
        assert_eq!(score2, -3);
        assert_eq!(cigar2.to_string(), "3I");
    }

    #[test]
    fn cigar_push_merges_runs() {
        let mut c = Cigar::default();
        c.push(CigarOp::Diagonal);
        c.push(CigarOp::Diagonal);
        c.push(CigarOp::Insertion);
        c.push(CigarOp::Diagonal);
        assert_eq!(c.to_string(), "2M1I1M");
        assert_eq!(c.runs().len(), 3);
    }

    #[test]
    #[should_panic(expected = "quadratic-memory")]
    fn size_guard() {
        let a: Seq = std::iter::repeat_n(logan_seq::Base::A, 10_000).collect();
        let _ = nw_traceback(&a, &a, Scoring::default());
    }
}
