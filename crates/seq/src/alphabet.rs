//! The alphabets used throughout LOGAN-rs.
//!
//! Sequences are stored as one symbol code per byte. For DNA the code is
//! the classic 2-bit encoding (`A=0, C=1, G=2, T=3`) — the LOGAN kernel
//! compares raw characters exactly as the CUDA implementation does — and
//! [`Base`] is the typed view of a code. For protein the codes `0..20`
//! index [`AMINO_ACIDS`]. A 2-bit packed representation ([`PackedSeq`])
//! serves the DNA k-mer machinery where memory traffic matters.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The 20 standard amino acids in code order: protein symbol code `c`
/// renders as `AMINO_ACIDS[c]`. The order matches the BLOSUM62 table in
/// [`crate::profile`].
pub const AMINO_ACIDS: &[u8; 20] = b"ARNDCQEGHILKMFPSTWYV";

/// Which symbol set a sequence's codes index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Alphabet {
    /// 4-letter nucleotide alphabet, codes `0..4` ([`Base`]).
    #[default]
    Dna,
    /// 20-letter amino-acid alphabet, codes `0..20` ([`AMINO_ACIDS`]).
    Protein,
}

impl Alphabet {
    /// Number of symbols (4 or 20) — the stride of a dense
    /// substitution-matrix row.
    #[inline]
    pub fn size(self) -> usize {
        match self {
            Alphabet::Dna => 4,
            Alphabet::Protein => 20,
        }
    }

    /// Decode a symbol code to its ASCII letter. Panics on a code
    /// outside the alphabet.
    #[inline]
    pub fn to_ascii(self, code: u8) -> u8 {
        match self {
            Alphabet::Dna => Base::from_code(code).to_ascii(),
            Alphabet::Protein => AMINO_ACIDS[code as usize],
        }
    }

    /// Parse an ASCII letter (case-insensitive) to its symbol code, or
    /// `None` when the letter is outside the alphabet.
    #[inline]
    pub fn from_ascii(self, ch: u8) -> Option<u8> {
        match self {
            Alphabet::Dna => Base::from_ascii(ch).map(|b| b as u8),
            Alphabet::Protein => AMINO_ACIDS
                .iter()
                .position(|&a| a == ch.to_ascii_uppercase())
                .map(|i| i as u8),
        }
    }

    /// Human-readable name for error messages.
    pub fn name(self) -> &'static str {
        match self {
            Alphabet::Dna => "DNA",
            Alphabet::Protein => "protein",
        }
    }
}

/// A single DNA nucleotide.
///
/// The discriminant is the 2-bit encoding (`A=0, C=1, G=2, T=3`), so
/// `base as u8` is directly usable as a packed code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum Base {
    /// Adenine.
    A = 0,
    /// Cytosine.
    C = 1,
    /// Guanine.
    G = 2,
    /// Thymine.
    T = 3,
}

impl Base {
    /// All four bases in encoding order.
    pub const ALL: [Base; 4] = [Base::A, Base::C, Base::G, Base::T];

    /// Decode from the 2-bit code (the low two bits of `code` are used).
    #[inline]
    pub fn from_code(code: u8) -> Base {
        match code & 3 {
            0 => Base::A,
            1 => Base::C,
            2 => Base::G,
            _ => Base::T,
        }
    }

    /// Parse an ASCII character (case-insensitive). Returns `None` for
    /// anything that is not `ACGTacgt`; ambiguity codes are not supported
    /// by the aligners, mirroring the original LOGAN which operates on the
    /// plain 4-letter alphabet.
    #[inline]
    pub fn from_ascii(ch: u8) -> Option<Base> {
        match ch {
            b'A' | b'a' => Some(Base::A),
            b'C' | b'c' => Some(Base::C),
            b'G' | b'g' => Some(Base::G),
            b'T' | b't' => Some(Base::T),
            _ => None,
        }
    }

    /// The ASCII representation (upper case).
    #[inline]
    pub fn to_ascii(self) -> u8 {
        match self {
            Base::A => b'A',
            Base::C => b'C',
            Base::G => b'G',
            Base::T => b'T',
        }
    }

    /// Watson–Crick complement.
    #[inline]
    pub fn complement(self) -> Base {
        // Complement in the 2-bit encoding is bitwise NOT of the code:
        // A(0)<->T(3), C(1)<->G(2).
        Base::from_code(!(self as u8))
    }

    /// The three bases different from `self`, in encoding order. Used by
    /// the error model to draw substitutions.
    #[inline]
    pub fn others(self) -> [Base; 3] {
        let mut out = [Base::A; 3];
        let mut k = 0;
        for b in Base::ALL {
            if b != self {
                out[k] = b;
                k += 1;
            }
        }
        out
    }
}

impl fmt::Display for Base {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_ascii() as char)
    }
}

/// A 2-bit-packed immutable DNA sequence.
///
/// Four bases per byte, little-endian within the byte (base `i` occupies
/// bits `2*(i%4)..2*(i%4)+2` of byte `i/4`). Packing is used by the k-mer
/// pipeline in `logan-bella`, where the k-mer matrix for a multi-Mb data
/// set dominates memory.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PackedSeq {
    data: Vec<u8>,
    len: usize,
}

impl PackedSeq {
    /// Pack a slice of bases.
    pub fn from_bases(bases: &[Base]) -> PackedSeq {
        let mut data = vec![0u8; bases.len().div_ceil(4)];
        for (i, &b) in bases.iter().enumerate() {
            data[i / 4] |= (b as u8) << (2 * (i % 4));
        }
        PackedSeq {
            data,
            len: bases.len(),
        }
    }

    /// Number of bases.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the sequence holds no bases.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Base at position `i`. Panics if out of bounds.
    #[inline]
    pub fn get(&self, i: usize) -> Base {
        assert!(
            i < self.len,
            "PackedSeq index {i} out of bounds ({})",
            self.len
        );
        Base::from_code(self.data[i / 4] >> (2 * (i % 4)))
    }

    /// Unpack into a vector of bases.
    pub fn unpack(&self) -> Vec<Base> {
        (0..self.len).map(|i| self.get(i)).collect()
    }

    /// Bytes of the packed payload (exposed for hashing / serialization).
    #[inline]
    pub fn as_bytes(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_roundtrip() {
        for b in Base::ALL {
            assert_eq!(Base::from_code(b as u8), b);
        }
    }

    #[test]
    fn ascii_roundtrip_and_case() {
        for b in Base::ALL {
            assert_eq!(Base::from_ascii(b.to_ascii()), Some(b));
            assert_eq!(Base::from_ascii(b.to_ascii().to_ascii_lowercase()), Some(b));
        }
        assert_eq!(Base::from_ascii(b'N'), None);
        assert_eq!(Base::from_ascii(b'-'), None);
    }

    #[test]
    fn complement_is_involution() {
        for b in Base::ALL {
            assert_eq!(b.complement().complement(), b);
            assert_ne!(b.complement(), b);
        }
        assert_eq!(Base::A.complement(), Base::T);
        assert_eq!(Base::C.complement(), Base::G);
    }

    #[test]
    fn others_excludes_self() {
        for b in Base::ALL {
            let o = b.others();
            assert_eq!(o.len(), 3);
            assert!(!o.contains(&b));
        }
    }

    #[test]
    fn packed_roundtrip_various_lengths() {
        for n in [0usize, 1, 3, 4, 5, 8, 9, 63, 64, 65, 1000] {
            let bases: Vec<Base> = (0..n).map(|i| Base::from_code((i % 4) as u8)).collect();
            let packed = PackedSeq::from_bases(&bases);
            assert_eq!(packed.len(), n);
            assert_eq!(packed.is_empty(), n == 0);
            assert_eq!(packed.unpack(), bases);
        }
    }

    #[test]
    fn packed_get_matches_unpack() {
        let bases = vec![Base::T, Base::G, Base::C, Base::A, Base::T, Base::T];
        let p = PackedSeq::from_bases(&bases);
        for (i, &b) in bases.iter().enumerate() {
            assert_eq!(p.get(i), b);
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn packed_get_out_of_bounds_panics() {
        let p = PackedSeq::from_bases(&[Base::A]);
        let _ = p.get(1);
    }

    #[test]
    fn packed_payload_is_compact() {
        let bases = vec![Base::A; 100];
        let p = PackedSeq::from_bases(&bases);
        assert_eq!(p.as_bytes().len(), 25);
    }
}
