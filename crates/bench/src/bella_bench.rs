//! Shared driver for the BELLA integration tables (IV and V).

use crate::{fmt_s, fmt_x, heading, write_json, BenchScale, Table};
use logan_bench_reexports::*;
use serde::Serialize;

/// Re-exports kept in one place so the driver reads cleanly.
mod logan_bench_reexports {
    pub use logan_bella::{BellaConfig, BellaPipeline};
    pub use logan_core::calibration::{
        BALANCER_SETUP_S_PER_GPU, BELLA_GPU_MARSHAL_S_PER_PAIR, BELLA_OVERLAP_S_PER_PAIR,
    };
    pub use logan_core::{CpuPlatformModel, LoganConfig, LoganExecutor, MultiGpu};
    pub use logan_gpusim::DeviceSpec;
    pub use logan_seq::DatasetPreset;
}

/// One row of a BELLA table.
#[derive(Serialize)]
pub struct BellaRow {
    /// The X-drop threshold.
    pub x: i32,
    /// Alignment cells measured at bench scale.
    pub cells_measured: u64,
    /// BELLA + SeqAn-model seconds (projected).
    pub cpu_s: f64,
    /// BELLA + LOGAN 1 GPU seconds (projected).
    pub gpu1_s: f64,
    /// BELLA + LOGAN n-GPU seconds (projected).
    pub gpun_s: f64,
    /// Speed-up of 1 GPU over CPU.
    pub speedup1: f64,
    /// Speed-up of n GPUs over CPU.
    pub speedupn: f64,
    /// Paper's CPU / 1 GPU / n GPU seconds.
    pub paper: (f64, f64, f64),
}

/// Parameters of one BELLA experiment.
pub struct BellaExperiment {
    /// Data-set preset (E. coli-like or C. elegans-like).
    pub preset: DatasetPreset,
    /// GPUs in the multi-GPU column (the paper uses 6).
    pub gpus: usize,
    /// X values (the paper's Table IV/V grid).
    pub xs: &'static [i32],
    /// Paper reference rows `(cpu, 1 gpu, 6 gpu)` aligned with `xs`.
    pub paper: &'static [(f64, f64, f64)],
    /// Paper-scale alignment count (1.82 M for E. coli, 235 M for
    /// C. elegans).
    pub paper_alignments: f64,
    /// Artifact name (e.g. "table4_fig10").
    pub name: &'static str,
    /// Human title.
    pub title: &'static str,
}

/// Run a BELLA experiment and print its table + figure series.
pub fn run(exp: &BellaExperiment) {
    let scale = BenchScale::from_env();
    let rs = exp.preset.read_set(scale.bella_scale, scale.seed);
    let power9 = CpuPlatformModel::power9_seqan();

    // Candidate generation once: it does not depend on X.
    let seqs: Vec<logan_seq::Seq> = rs.reads.iter().map(|r| r.seq.clone()).collect();
    let mut cfg = BellaConfig::with_x(exp.xs[0]);
    cfg.depth = rs.depth();
    cfg.error_rate = rs.error_rate;
    let pipeline = BellaPipeline::new(cfg);
    let (pairs, _, stats) = pipeline.candidates(&seqs);
    let measured = pairs.len().max(1);
    let factor = exp.paper_alignments / measured as f64;
    eprintln!(
        "[{}] {} reads, {} candidates measured (projection x{:.0}), reliable window {:?}",
        exp.name,
        rs.reads.len(),
        measured,
        factor,
        stats.bounds
    );

    let overlap_stage = BELLA_OVERLAP_S_PER_PAIR * exp.paper_alignments;
    let marshal = BELLA_GPU_MARSHAL_S_PER_PAIR * exp.paper_alignments;
    let mut rows = Vec::new();

    for (i, &x) in exp.xs.iter().enumerate() {
        let exec = LoganExecutor::new(DeviceSpec::v100(), LoganConfig::with_x(x));
        let (_, rep1) = exec.align_pairs(&pairs);
        let multi = MultiGpu::new(exp.gpus, DeviceSpec::v100(), LoganConfig::with_x(x));
        let (_, repn) = multi.align_pairs(&pairs);

        let spec = DeviceSpec::v100();
        let cells_full = rep1.total_cells as f64 * factor;
        let cpu_s = overlap_stage + power9.time_s(cells_full as u64, exp.paper_alignments as usize);
        let gpu1_s = overlap_stage + marshal + crate::project_gpu_time(&spec, &rep1, factor);
        let gpun_s = overlap_stage
            + marshal
            + crate::project_multi_time(&spec, &repn, BALANCER_SETUP_S_PER_GPU, factor);
        rows.push(BellaRow {
            x,
            cells_measured: rep1.total_cells,
            cpu_s,
            gpu1_s,
            gpun_s,
            speedup1: cpu_s / gpu1_s,
            speedupn: cpu_s / gpun_s,
            paper: exp.paper[i],
        });
        eprintln!("[{}] x={x} done", exp.name);
    }

    heading(format!(
        "{} ({} candidates measured, projected to {:.2e} alignments; {} GPUs in the multi column)",
        exp.title, measured, exp.paper_alignments, exp.gpus
    ));
    let mut t = Table::new(&[
        "X",
        "BELLA CPU (s)",
        "LOGAN 1 GPU (s)",
        "LOGAN n GPU (s)",
        "speedup 1G",
        "speedup nG",
        "paper (s/s/s)",
    ]);
    for r in &rows {
        t.row(vec![
            r.x.to_string(),
            fmt_s(r.cpu_s),
            fmt_s(r.gpu1_s),
            fmt_s(r.gpun_s),
            fmt_x(r.speedup1),
            fmt_x(r.speedupn),
            format!(
                "{}/{}/{}",
                fmt_s(r.paper.0),
                fmt_s(r.paper.1),
                fmt_s(r.paper.2)
            ),
        ]);
    }
    println!("{}", t.render());

    heading("Figure series — BELLA speed-up vs X (log-log)");
    let mut f = Table::new(&["X", "1 GPU", "n GPUs", "paper 1 GPU", "paper n GPUs"]);
    for r in &rows {
        f.row(vec![
            r.x.to_string(),
            fmt_x(r.speedup1),
            fmt_x(r.speedupn),
            fmt_x(r.paper.0 / r.paper.1),
            fmt_x(r.paper.0 / r.paper.2),
        ]);
    }
    println!("{}", f.render());
    write_json(exp.name, &rows);
}
