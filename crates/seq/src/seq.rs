//! Owned DNA sequences.
//!
//! [`Seq`] stores one [`Base`] per element. The LOGAN host pipeline
//! reverses the query of every left extension so the (simulated) GPU can
//! read both sequences in increasing address order (paper §IV-B, Fig. 6);
//! [`Seq::reversed`] and [`Seq::reverse_complement`] support that step.

use crate::alphabet::Base;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::Index;

/// An owned DNA sequence (one byte per base).
#[derive(Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Seq {
    bases: Vec<Base>,
}

impl Seq {
    /// Create an empty sequence.
    pub fn new() -> Seq {
        Seq { bases: Vec::new() }
    }

    /// Create from a vector of bases.
    pub fn from_bases(bases: Vec<Base>) -> Seq {
        Seq { bases }
    }

    /// Parse from ASCII. Characters outside `ACGTacgt` are rejected with
    /// an error naming the offending position.
    pub fn from_ascii(s: &[u8]) -> Result<Seq, SeqParseError> {
        let mut bases = Vec::with_capacity(s.len());
        for (i, &ch) in s.iter().enumerate() {
            match Base::from_ascii(ch) {
                Some(b) => bases.push(b),
                None => {
                    return Err(SeqParseError {
                        position: i,
                        byte: ch,
                    })
                }
            }
        }
        Ok(Seq { bases })
    }

    /// Parse from a `&str`; convenience over [`Seq::from_ascii`].
    pub fn from_str_strict(s: &str) -> Result<Seq, SeqParseError> {
        Seq::from_ascii(s.as_bytes())
    }

    /// Number of bases.
    #[inline]
    pub fn len(&self) -> usize {
        self.bases.len()
    }

    /// True when empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.bases.is_empty()
    }

    /// Borrow the bases.
    #[inline]
    pub fn as_slice(&self) -> &[Base] {
        &self.bases
    }

    /// Push one base.
    #[inline]
    pub fn push(&mut self, b: Base) {
        self.bases.push(b);
    }

    /// Append another sequence.
    pub fn extend_from(&mut self, other: &Seq) {
        self.bases.extend_from_slice(&other.bases);
    }

    /// Subsequence `[start, end)` as a new sequence.
    ///
    /// Panics if `start > end` or `end > len` — slicing errors at this
    /// layer are programmer bugs, not data errors.
    pub fn subseq(&self, start: usize, end: usize) -> Seq {
        Seq {
            bases: self.bases[start..end].to_vec(),
        }
    }

    /// Drop all bases, keeping the allocation.
    #[inline]
    pub fn clear(&mut self) {
        self.bases.clear();
    }

    /// Replace the contents with `src[start, end)`, reusing this
    /// sequence's allocation — the in-place form of [`Seq::subseq`] used
    /// by scratch buffers on the alignment hot path.
    ///
    /// Panics on an invalid range, like [`Seq::subseq`].
    pub fn assign_range(&mut self, src: &Seq, start: usize, end: usize) {
        self.bases.clear();
        self.bases.extend_from_slice(&src.bases[start..end]);
    }

    /// Replace the contents with `src[start, end)` *reversed*, reusing
    /// this sequence's allocation — the in-place form of
    /// [`Seq::reversed`] applied to a prefix, which is what the host
    /// does to every left extension (paper Fig. 6) without paying a
    /// fresh allocation per seed.
    ///
    /// Panics on an invalid range, like [`Seq::subseq`].
    pub fn assign_reversed_range(&mut self, src: &Seq, start: usize, end: usize) {
        self.bases.clear();
        self.bases
            .extend(src.bases[start..end].iter().rev().copied());
    }

    /// The sequence reversed (not complemented). This is the
    /// transformation LOGAN's host applies to left-extension queries to
    /// obtain coalesced GPU memory access.
    pub fn reversed(&self) -> Seq {
        Seq {
            bases: self.bases.iter().rev().copied().collect(),
        }
    }

    /// Reverse complement, as used when overlapping reads sampled from
    /// opposite strands.
    pub fn reverse_complement(&self) -> Seq {
        Seq {
            bases: self.bases.iter().rev().map(|b| b.complement()).collect(),
        }
    }

    /// ASCII rendering (upper-case).
    pub fn to_ascii(&self) -> Vec<u8> {
        self.bases.iter().map(|b| b.to_ascii()).collect()
    }

    /// Iterate over bases.
    pub fn iter(&self) -> impl Iterator<Item = Base> + '_ {
        self.bases.iter().copied()
    }

    /// Hamming distance against another sequence of equal length.
    /// Panics on length mismatch.
    pub fn hamming(&self, other: &Seq) -> usize {
        assert_eq!(self.len(), other.len(), "hamming requires equal lengths");
        self.bases
            .iter()
            .zip(&other.bases)
            .filter(|(a, b)| a != b)
            .count()
    }
}

impl Index<usize> for Seq {
    type Output = Base;
    #[inline]
    fn index(&self, i: usize) -> &Base {
        &self.bases[i]
    }
}

impl fmt::Debug for Seq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const PREVIEW: usize = 48;
        let ascii = self.to_ascii();
        if ascii.len() <= PREVIEW {
            write!(f, "Seq({})", String::from_utf8_lossy(&ascii))
        } else {
            write!(
                f,
                "Seq({}… len={})",
                String::from_utf8_lossy(&ascii[..PREVIEW]),
                self.len()
            )
        }
    }
}

impl fmt::Display for Seq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", String::from_utf8_lossy(&self.to_ascii()))
    }
}

impl FromIterator<Base> for Seq {
    fn from_iter<I: IntoIterator<Item = Base>>(iter: I) -> Seq {
        Seq {
            bases: iter.into_iter().collect(),
        }
    }
}

/// Error produced when parsing a sequence from ASCII.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeqParseError {
    /// Byte offset of the offending character.
    pub position: usize,
    /// The offending byte.
    pub byte: u8,
}

impl fmt::Display for SeqParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid DNA character {:?} at position {}",
            self.byte as char, self.position
        )
    }
}

impl std::error::Error for SeqParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(s: &str) -> Seq {
        Seq::from_str_strict(s).unwrap()
    }

    #[test]
    fn parse_valid_and_invalid() {
        let s = seq("ACGTacgt");
        assert_eq!(s.len(), 8);
        assert_eq!(s.to_ascii(), b"ACGTACGT");

        let err = Seq::from_str_strict("ACGNT").unwrap_err();
        assert_eq!(err.position, 3);
        assert_eq!(err.byte, b'N');
        assert!(err.to_string().contains("position 3"));
    }

    #[test]
    fn reversal_is_involution() {
        let s = seq("ACGTTGCA");
        assert_eq!(s.reversed().reversed(), s);
        assert_eq!(
            s.reversed().to_ascii(),
            b"ACGTTGCA".iter().rev().copied().collect::<Vec<_>>()
        );
    }

    #[test]
    fn reverse_complement_is_involution() {
        let s = seq("AACGT");
        let rc = s.reverse_complement();
        assert_eq!(rc.to_ascii(), b"ACGTT");
        assert_eq!(rc.reverse_complement(), s);
    }

    #[test]
    fn subseq_and_index() {
        let s = seq("ACGTACGT");
        let sub = s.subseq(2, 6);
        assert_eq!(sub.to_ascii(), b"GTAC");
        assert_eq!(s[0], Base::A);
        assert_eq!(s[3], Base::T);
    }

    #[test]
    fn subseq_empty_range_ok() {
        let s = seq("ACGT");
        assert!(s.subseq(2, 2).is_empty());
    }

    #[test]
    fn hamming_counts_mismatches() {
        assert_eq!(seq("ACGT").hamming(&seq("ACGT")), 0);
        assert_eq!(seq("ACGT").hamming(&seq("TCGA")), 2);
        assert_eq!(seq("AAAA").hamming(&seq("TTTT")), 4);
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn hamming_length_mismatch_panics() {
        let _ = seq("ACG").hamming(&seq("ACGT"));
    }

    #[test]
    fn debug_preview_truncates() {
        let long: Seq = std::iter::repeat_n(Base::A, 100).collect();
        let dbg = format!("{long:?}");
        assert!(dbg.contains("len=100"));
        let short = seq("ACGT");
        assert_eq!(format!("{short:?}"), "Seq(ACGT)");
    }

    #[test]
    fn assign_range_reuses_buffer() {
        let src = seq("ACGTACGT");
        let mut dst = seq("TTTTTTTTTTTT"); // larger, so capacity suffices
        dst.assign_range(&src, 2, 6);
        assert_eq!(dst.to_ascii(), b"GTAC");
        dst.assign_range(&src, 0, 0);
        assert!(dst.is_empty());
        dst.assign_reversed_range(&src, 0, 4);
        assert_eq!(dst.to_ascii(), b"TGCA");
        assert_eq!(dst, src.subseq(0, 4).reversed());
        dst.clear();
        assert!(dst.is_empty());
    }

    #[test]
    #[should_panic]
    fn assign_range_out_of_bounds_panics() {
        let src = seq("ACGT");
        let mut dst = Seq::new();
        dst.assign_range(&src, 2, 9);
    }

    #[test]
    fn extend_and_push() {
        let mut s = seq("AC");
        s.push(Base::G);
        s.extend_from(&seq("T"));
        assert_eq!(s.to_ascii(), b"ACGT");
    }
}
