#!/usr/bin/env bash
# Pre-merge gate for LOGAN-rs. Run from the repository root:
#
#     ./scripts/premerge.sh          # full gate (what CI runs)
#     ./scripts/premerge.sh --quick  # skip the release build
#
# Mirrors the tier-1 definition in ROADMAP.md plus the style gates:
# rustfmt, clippy (warnings are errors), release build, full test suite,
# and warning-free rustdoc.
set -euo pipefail
cd "$(dirname "$0")/.."

quick=0
[[ "${1:-}" == "--quick" ]] && quick=1

step() { printf '\n==> %s\n' "$*"; }

step "cargo fmt --check"
cargo fmt --check

step "cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

if [[ $quick -eq 0 ]]; then
  step "cargo build --release"
  cargo build --release
fi

step "cargo test -q"
cargo test -q

step "cargo doc --no-deps --workspace (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

printf '\npremerge: all gates green\n'
