//! Offline, API-compatible subset of
//! [`serde_json`](https://crates.io/crates/serde_json), vendored so the
//! workspace builds without a crates.io mirror.
//!
//! Renders the [`serde::Value`] tree produced by the sibling `serde` stub
//! as JSON text. Only the writer half exists ([`to_string`] /
//! [`to_string_pretty`]); nothing in LOGAN-rs parses JSON back.

use serde::{Serialize, Value};
use std::fmt;

/// Serialization error. The tree writer is total (non-finite floats
/// degrade to `null` like upstream), so this is never constructed today;
/// it exists because the public API returns `Result` like upstream.
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Serialize `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0)?;
    Ok(out)
}

/// Serialize `value` as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0)?;
    Ok(out)
}

fn write_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
}

fn write_value(
    out: &mut String,
    v: &Value,
    indent: Option<usize>,
    depth: usize,
) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            // Match serde_json's `Value` behaviour: NaN and infinities
            // become `null`, finite floats always carry a decimal point
            // or exponent so they re-parse as floats.
            if !x.is_finite() {
                out.push_str("null");
                return Ok(());
            }
            let s = format!("{x}");
            out.push_str(&s);
            if !s.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1)?;
            }
            write_indent(out, indent, depth);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_indent(out, indent, depth + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1)?;
            }
            write_indent(out, indent, depth);
            out.push('}');
        }
    }
    Ok(())
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty() {
        let v = Value::Map(vec![
            ("a".into(), Value::U64(1)),
            ("b".into(), Value::Seq(vec![Value::Bool(true), Value::Null])),
        ]);
        struct Raw(Value);
        impl Serialize for Raw {
            fn to_value(&self) -> Value {
                self.0.clone()
            }
        }
        assert_eq!(
            to_string(&Raw(v.clone())).unwrap(),
            r#"{"a":1,"b":[true,null]}"#
        );
        let pretty = to_string_pretty(&Raw(v)).unwrap();
        assert!(pretty.contains("\n  \"a\": 1"));
    }

    #[test]
    fn floats_reparse_as_floats() {
        assert_eq!(to_string(&3.0f64).unwrap(), "3.0");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
    }

    #[test]
    fn strings_escape() {
        assert_eq!(to_string("a\"b\n").unwrap(), r#""a\"b\n""#);
    }
}
