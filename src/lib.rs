//! # LOGAN-rs
//!
//! A comprehensive Rust reproduction of *LOGAN: High-Performance
//! GPU-Based X-Drop Long-Read Alignment* (Zeni et al., IPDPS 2020),
//! built on a simulated multi-GPU substrate (see `DESIGN.md` for the
//! substitution argument and the per-experiment index).
//!
//! This facade re-exports the workspace crates:
//!
//! * [`seq`] — sequences, scoring, read simulation, k-mers, FASTA;
//! * [`align`] — the scalar X-drop reference, NW/SW/banded-SW, ksw2;
//! * [`gpusim`] — the execution-driven GPU simulator;
//! * [`core`] — the LOGAN kernel, host executor, multi-GPU balancer,
//!   comparator kernels, CPU platform models, and the fault-injection
//!   + self-healing supervision layer (`core::faults`);
//! * [`bella`] — the BELLA many-to-many overlapper;
//! * [`roofline`] — the instruction roofline with the paper's adapted
//!   ceiling;
//! * [`serve`] — the always-on alignment service: cross-request
//!   coalescing, per-tenant admission control, graceful drain, and a
//!   simulated-time latency harness.
//!
//! ## Quickstart
//!
//! ```
//! use logan::prelude::*;
//!
//! // Two noisy copies of the same template, plus a planted exact seed.
//! let pairs = PairSet::generate(4, 0.15, 42).pairs;
//!
//! // LOGAN on one simulated V100.
//! let executor = LoganExecutor::new(DeviceSpec::v100(), LoganConfig::with_x(100));
//! let (results, report) = executor.align_pairs(&pairs);
//!
//! // The GPU pipeline agrees with the scalar reference bit for bit.
//! let cpu = XDropExtender::new(Scoring::default(), 100);
//! for (p, r) in pairs.iter().zip(&results) {
//!     assert_eq!(*r, seed_extend(&p.query, &p.target, p.seed, &cpu));
//! }
//! assert!(report.sim_time_s > 0.0);
//! ```

pub use logan_align as align;
pub use logan_bella as bella;
pub use logan_core as core;
pub use logan_gpusim as gpusim;
pub use logan_roofline as roofline;
pub use logan_seq as seq;
pub use logan_serve as serve;

/// One-stop imports for examples and downstream users.
pub mod prelude {
    pub use logan_align::{
        banded_sw, ksw2_extend, needleman_wunsch, seed_extend, seed_extend_with, smith_waterman,
        with_thread_workspace, xdrop_extend, xdrop_extend_adaptive, xdrop_extend_adaptive_with,
        xdrop_extend_simd, xdrop_extend_simd8, xdrop_extend_simd8_with, xdrop_extend_simd_with,
        xdrop_extend_with, AlignWorkspace, CpuBatchAligner, Engine, ExtensionResult, Ksw2Params,
        SeedExtendResult, TierTally, XDropCpuAligner, XDropExtender,
    };
    pub use logan_bella::{BellaConfig, BellaPipeline, OverlapMetrics};
    pub use logan_core::{
        AlignBackend, BackendError, BackendReport, ChaosBackend, ChaosSpec, ExtensionJob, Fault,
        FaultPlan, Fleet, FleetSpec, GpuBackend, GpuBatchReport, LoganConfig, LoganExecutor,
        MultiGpu, SupervisePolicy, Supervised, ThreadPolicy, TraceEvent,
    };
    pub use logan_gpusim::{Device, DeviceSpec, KernelReport, LaunchConfig};
    pub use logan_roofline::{InstructionRoofline, RooflinePoint};
    pub use logan_seq::{
        DatasetPreset, ErrorModel, ErrorProfile, PairSet, ReadPair, ReadSet, ReadSimulator,
        Scoring, Seed, Seq,
    };
    pub use logan_serve::{ServeConfig, ServeError, Server};
}
