//! Criterion micro-benchmarks of the comparator algorithms: ksw2-style
//! affine Z-drop, full NW/SW and banded SW.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use logan_align::{banded_sw, ksw2_extend, needleman_wunsch, smith_waterman, Ksw2Params};
use logan_seq::readsim::{random_seq, PairSet};
use logan_seq::Scoring;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_ksw2(c: &mut Criterion) {
    let mut group = c.benchmark_group("ksw2_extend");
    group.sample_size(15);
    let set = PairSet::generate_with_lengths(1, 0.15, 4000, 4000, 17);
    let p = &set.pairs[0];
    let q = p.query.subseq(p.seed.qpos + p.seed.len, p.query.len());
    let t = p.target.subseq(p.seed.tpos + p.seed.len, p.target.len());
    for &z in &[10i32, 100, 1000] {
        let params = Ksw2Params::with_zdrop(z);
        let cells = ksw2_extend(&q, &t, params).cells;
        group.throughput(Throughput::Elements(cells));
        group.bench_with_input(BenchmarkId::from_parameter(z), &z, |b, &z| {
            b.iter(|| ksw2_extend(&q, &t, Ksw2Params::with_zdrop(z)))
        });
    }
    group.finish();
}

fn bench_quadratic(c: &mut Criterion) {
    let mut group = c.benchmark_group("quadratic_aligners");
    group.sample_size(15);
    let mut rng = StdRng::seed_from_u64(23);
    let a = random_seq(1000, &mut rng);
    let b2 = random_seq(1000, &mut rng);
    group.throughput(Throughput::Elements(1_000_000));
    group.bench_function("needleman_wunsch_1k", |b| {
        b.iter(|| needleman_wunsch(&a, &b2, Scoring::default()))
    });
    group.bench_function("smith_waterman_1k", |b| {
        b.iter(|| smith_waterman(&a, &b2, Scoring::default()))
    });
    group.bench_function("banded_sw_1k_w64", |b| {
        b.iter(|| banded_sw(&a, &b2, Scoring::default(), 64))
    });
    group.finish();
}

criterion_group!(benches, bench_ksw2, bench_quadratic);
criterion_main!(benches);
