//! Exact allocation-peak instrumentation shared by the `streaming`
//! bench binary and the `stream_mem` premerge smoke test (DESIGN.md §8
//! measurements).
//!
//! [`PeakAlloc`] counts live heap bytes and keeps a resettable
//! high-water mark. The measuring helpers only see allocations routed
//! through it, so the process must install it:
//!
//! ```ignore
//! use logan_bench::memprobe::PeakAlloc;
//!
//! #[global_allocator]
//! static PEAK_ALLOC: PeakAlloc = PeakAlloc;
//! ```
//!
//! The counters are process-global statics; measured regions must not
//! run concurrently with each other (run one measurement at a time, as
//! both consumers do).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Tracks live heap bytes and a resettable high-water mark.
pub struct PeakAlloc;

static LIVE: AtomicU64 = AtomicU64::new(0);
static PEAK: AtomicU64 = AtomicU64::new(0);

fn on_alloc(size: usize) {
    let live = LIVE.fetch_add(size as u64, Ordering::Relaxed) + size as u64;
    PEAK.fetch_max(live, Ordering::Relaxed);
}

unsafe impl GlobalAlloc for PeakAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        on_alloc(layout.size());
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        on_alloc(layout.size());
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        LIVE.fetch_sub(layout.size() as u64, Ordering::Relaxed);
        on_alloc(new_size);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        LIVE.fetch_sub(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.dealloc(ptr, layout) }
    }
}

/// Run `f`, returning its result and the allocation peak *above* the
/// bytes live at entry. Requires [`PeakAlloc`] to be the process's
/// global allocator (the delta reads 0 otherwise).
pub fn peak_during<R>(f: impl FnOnce() -> R) -> (R, u64) {
    let base = LIVE.load(Ordering::Relaxed);
    PEAK.store(base, Ordering::Relaxed);
    let out = f();
    (out, PEAK.load(Ordering::Relaxed).saturating_sub(base))
}

/// [`peak_during`] plus wall-clock seconds.
pub fn measure<R>(f: impl FnOnce() -> R) -> (R, u64, f64) {
    let start = Instant::now();
    let (out, peak) = peak_during(f);
    (out, peak, start.elapsed().as_secs_f64())
}

/// Bytes as MiB, for reporting.
pub fn mib(bytes: u64) -> f64 {
    bytes as f64 / (1024.0 * 1024.0)
}
