//! protein_bench — BLOSUM62 homology throughput through the profile
//! stack (the §VIII future-work item, measured).
//!
//! Seed-split X-drop extension over synthetic 400-aa homolog pairs
//! under `blosum62:-6`, single host thread, scalar vs lane-parallel
//! i16 engine. 400 aa keeps every pair inside the i16 eligibility
//! window (⌊32767 / 11⌋ = 2978 aa at BLOSUM62's max score), so the
//! SIMD row measures the vector kernel, not its scalar fallback. X is
//! the sensitive-search 400: the live band is ~2X/|gap| cells wide, and
//! a tight X leaves anti-diagonals narrower than a few 16-lane chunks —
//! the regime where the remainder loop, not the vector DP, dominates.
//!
//! Asserted in-bin on every run:
//! - scalar and SIMD produce bit-identical results;
//! - a second backend (the simulated-GPU executor) reproduces the CPU
//!   backend's results bit-for-bit under the matrix profile;
//! - SIMD sustains ≥ 1.5× the scalar single-thread GCUPS.
//!
//! ```sh
//! cargo run --release -p logan-bench --bin protein_bench            # full
//! cargo run --release -p logan-bench --bin protein_bench -- --quick # smoke
//! ```

use logan_align::{Engine, XDropCpuAligner};
use logan_bench::{heading, write_json, BenchScale, Table};
use logan_core::backend::AlignBackend;
use logan_core::{LoganConfig, LoganExecutor};
use logan_gpusim::DeviceSpec;
use logan_seq::readsim::{ReadPair, Seed};
use logan_seq::{Alphabet, ScoreProfile, Seq};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    engine: String,
    pairs: usize,
    cells: u64,
    wall_s: f64,
    gcups: f64,
    speedup_vs_scalar: f64,
}

/// Homolog pairs: a random protein and a `sub_rate`-mutated copy, with
/// an exact `seed_len`-mer preserved mid-sequence so the seed-split
/// extension has real work on both sides.
fn protein_pairs(n: usize, len: usize, seed_len: usize, sub_rate: f64, seed: u64) -> Vec<ReadPair> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let q: Vec<u8> = (0..len).map(|_| rng.gen_range(0..20u8)).collect();
            let mid = len / 2;
            let mut t = q.clone();
            for (i, residue) in t.iter_mut().enumerate() {
                if (mid..mid + seed_len).contains(&i) {
                    continue;
                }
                if rng.gen_bool(sub_rate) {
                    *residue = rng.gen_range(0..20u8);
                }
            }
            ReadPair {
                query: Seq::from_codes(q, Alphabet::Protein),
                target: Seq::from_codes(t, Alphabet::Protein),
                seed: Seed {
                    qpos: mid,
                    tpos: mid,
                    len: seed_len,
                },
                template_len: len,
            }
        })
        .collect()
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let scale = BenchScale::from_env();
    let profile = ScoreProfile::blosum62(-6);
    let x = 400;
    let n = if quick { 200 } else { 1000 };
    let len = 400;
    let pairs = protein_pairs(n, len, 6, 0.15, scale.seed);

    let mut rows: Vec<Row> = Vec::new();
    let mut scalar_gcups = f64::NAN;
    let mut reference = None;
    for engine in [Engine::Scalar, Engine::Simd] {
        let backend = XDropCpuAligner::new(1, profile, x, engine);
        // Best-of-3 wall time: the host clock jitters, the DP does not.
        let mut best_wall = f64::INFINITY;
        let mut cells = 0u64;
        let mut results = Vec::new();
        for _ in 0..3 {
            let (res, rep) = backend.align_block(&pairs);
            best_wall = best_wall.min(rep.wall_s);
            cells = rep.total_cells;
            results = res;
        }
        match &reference {
            None => reference = Some(results),
            Some(r) => assert_eq!(
                r, &results,
                "scalar and SIMD engines must agree bit-for-bit under BLOSUM62"
            ),
        }
        let gcups = cells as f64 / best_wall / 1e9;
        if engine == Engine::Scalar {
            scalar_gcups = gcups;
        }
        rows.push(Row {
            engine: format!("{engine:?}"),
            pairs: pairs.len(),
            cells,
            wall_s: best_wall,
            gcups,
            speedup_vs_scalar: gcups / scalar_gcups,
        });
    }
    let reference = reference.expect("both engines ran");

    // Second backend: the simulated-GPU executor under the same matrix
    // profile must reproduce the CPU backend's results bit-for-bit.
    let mut cfg = LoganConfig::with_x(x);
    cfg.profile = profile;
    cfg.engine = Engine::Simd;
    let gpu = LoganExecutor::new(DeviceSpec::v100(), cfg);
    let (gpu_results, _) = gpu.align_block(&pairs);
    assert_eq!(
        reference, gpu_results,
        "cpu and simulated-gpu backends must agree bit-for-bit under BLOSUM62"
    );

    heading(format!(
        "protein_bench — BLOSUM62 seed-split X-drop, {} x {len} aa homolog pairs, \
         X = {x}, 1 host thread{}",
        pairs.len(),
        if quick { " [--quick]" } else { "" }
    ));
    let mut t = Table::new(&[
        "Engine", "Pairs", "DP cells", "Wall (s)", "GCUPS", "Speed-up",
    ]);
    for r in &rows {
        t.row(vec![
            r.engine.clone(),
            r.pairs.to_string(),
            r.cells.to_string(),
            format!("{:.4}", r.wall_s),
            format!("{:.3}", r.gcups),
            format!("{:.2}x", r.speedup_vs_scalar),
        ]);
    }
    println!("{}", t.render());

    let simd_speedup = rows[1].speedup_vs_scalar;
    assert!(
        simd_speedup >= 1.5,
        "SIMD engine must sustain >= 1.5x the scalar single-thread GCUPS under \
         BLOSUM62, measured {simd_speedup:.2}x"
    );
    println!("protein_bench: engines and backends bit-identical; SIMD {simd_speedup:.2}x scalar.");
    if !quick {
        // The quick smoke (premerge) must not clobber the recorded
        // full-run artifact.
        write_json("protein_bench", &rows);
    }
}
