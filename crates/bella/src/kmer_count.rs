//! Canonical k-mer counting across a read set.
//!
//! Two shapes, same semantics:
//!
//! * [`count_kmers`] — one hash map over everything (the BELLA
//!   original); peak memory is the whole distinct-k-mer table.
//! * [`count_reliable_sharded`] — the streaming pipeline's counter. The
//!   code space is hash-partitioned into `shards` disjoint slices
//!   (KMC/Jellyfish-style); shards are counted one *wave* at a time and
//!   each wave's table is reduced to its reliable survivors and dropped
//!   before the next begins, so at most `1/shards` of the table is ever
//!   resident. Within a wave, k-mer extraction fans out over Rayon
//!   workers; the merge is a sequential drain of per-chunk code lists.
//!   The extra price is `shards` scans of the (already resident) reads —
//!   k-mer iteration is a tiny fraction of pipeline time next to
//!   alignment, and DESIGN.md §8 records the trade.

use crate::fxhash::{FxHashMap, FxHashSet};
use crate::prune::ReliableBounds;
use logan_seq::{CanonicalKmerIter, Seq};
use rayon::prelude::*;

/// Count canonical k-mers over all reads. Multiple occurrences within
/// one read all count (as in BELLA's counter; the *reliable* window
/// later caps what survives).
pub fn count_kmers(reads: &[Seq], k: usize) -> FxHashMap<u64, u32> {
    let mut counts: FxHashMap<u64, u32> = FxHashMap::default();
    // Reserve roughly one slot per expected distinct k-mer (total bases,
    // capped to keep worst-case memory sane).
    let total: usize = reads.iter().map(|r| r.len()).sum();
    counts.reserve(total.min(1 << 24));
    for read in reads {
        for (_, km, _) in CanonicalKmerIter::new(read, k) {
            *counts.entry(km.code).or_insert(0) += 1;
        }
    }
    counts
}

/// Which of `shards` hash partitions a canonical k-mer code belongs to.
///
/// A multiply-shift mix spreads the partition decision across all code
/// bits (canonical 2-bit codes are low-entropy in the low bits), so
/// shard sizes stay balanced even on repeat-heavy genomes.
pub fn shard_of(code: u64, shards: usize) -> usize {
    debug_assert!(shards >= 1);
    ((code.wrapping_mul(0x9E37_79B9_7F4A_7C15)) >> 32) as usize % shards
}

/// Count the k-mers of one shard: extraction is parallel over read
/// chunks (each worker emits the chunk's codes belonging to `shard`),
/// the count merge is a sequential drain.
fn count_shard(reads: &[Seq], k: usize, shard: usize, shards: usize) -> FxHashMap<u64, u32> {
    const CHUNK_READS: usize = 64;
    let n_chunks = reads.len().div_ceil(CHUNK_READS).max(1);
    let code_lists: Vec<Vec<u64>> = (0..n_chunks)
        .into_par_iter()
        .map(|c| {
            let lo = c * CHUNK_READS;
            let hi = (lo + CHUNK_READS).min(reads.len());
            let mut codes = Vec::new();
            for read in &reads[lo..hi] {
                for (_, km, _) in CanonicalKmerIter::new(read, k) {
                    if shard_of(km.code, shards) == shard {
                        codes.push(km.code);
                    }
                }
            }
            codes
        })
        .collect();
    let mut counts: FxHashMap<u64, u32> = FxHashMap::default();
    for codes in code_lists {
        for code in codes {
            *counts.entry(code).or_insert(0) += 1;
        }
    }
    counts
}

/// Sharded, bounded-memory equivalent of `count_kmers` +
/// [`crate::prune::reliable_kmers`]: returns the number of distinct
/// canonical k-mers and the set of reliable ones under `bounds`.
///
/// Exactly equal to the monolithic computation for every `shards >= 1`
/// (counting is commutative and the partitions are disjoint); only the
/// peak table memory changes, from the full distinct table to roughly
/// `1/shards` of it plus the (much smaller) reliable survivor set.
pub fn count_reliable_sharded(
    reads: &[Seq],
    k: usize,
    shards: usize,
    bounds: ReliableBounds,
) -> (usize, FxHashSet<u64>) {
    let shards = shards.max(1);
    let mut distinct = 0usize;
    let mut reliable = FxHashSet::default();
    for shard in 0..shards {
        // One wave: count this shard, keep its reliable survivors, drop
        // the table before the next wave allocates.
        let counts = count_shard(reads, k, shard, shards);
        distinct += counts.len();
        reliable.extend(
            counts
                .into_iter()
                .filter(|&(_, c)| c >= bounds.lo && c <= bounds.hi)
                .map(|(code, _)| code),
        );
    }
    (distinct, reliable)
}

/// Histogram of multiplicities (index = multiplicity, capped), useful
/// for diagnostics and for choosing reliable bounds empirically.
pub fn multiplicity_histogram(counts: &FxHashMap<u64, u32>, cap: usize) -> Vec<u64> {
    let mut hist = vec![0u64; cap + 1];
    for &c in counts.values() {
        hist[(c as usize).min(cap)] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use logan_seq::readsim::{random_seq, ReadSimulator};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn seq(s: &str) -> Seq {
        Seq::from_str_strict(s).unwrap()
    }

    #[test]
    fn counts_are_strand_canonical() {
        // A read and its reverse complement contribute identically.
        let fwd = seq("ACGTTGCATGCAACGTT");
        let rc = fwd.reverse_complement();
        let a = count_kmers(std::slice::from_ref(&fwd), 5);
        let b = count_kmers(&[rc], 5);
        assert_eq!(a, b);
    }

    #[test]
    fn simple_multiplicities() {
        // "ACGTACGT" with k=4: ACGT (x2... appears at 0 and 4), CGTA, GTAC, TACG.
        let counts = count_kmers(&[seq("ACGTACGT")], 4);
        let acgt = logan_seq::Kmer::from_bases(seq("ACGT").as_slice())
            .canonical()
            .code;
        assert_eq!(counts[&acgt], 2);
        assert_eq!(counts.values().sum::<u32>(), 5, "5 k-mer positions total");
    }

    #[test]
    fn shared_kmers_across_reads_accumulate() {
        // Canonicalization can merge a k-mer with another position's
        // reverse complement, so individual counts are multiples of the
        // read multiplicity rather than exactly equal to it.
        let r = seq("ACGTTGCAACGGT");
        let per_read = count_kmers(std::slice::from_ref(&r), 8);
        let counts = count_kmers(&[r.clone(), r.clone(), r], 8);
        assert_eq!(counts.len(), per_read.len());
        for (code, c) in &counts {
            assert_eq!(*c, per_read[code] * 3);
        }
    }

    #[test]
    fn histogram_caps() {
        let r = seq("AAAAAAAAAA");
        let counts = count_kmers(&[r], 4); // poly-A k-mer, multiplicity 7
        let hist = multiplicity_histogram(&counts, 5);
        assert_eq!(hist[5], 1, "capped into the top bucket");
    }

    #[test]
    fn sharded_counting_equals_monolithic() {
        use crate::prune::reliable_kmers;
        let sim = ReadSimulator {
            read_len: (300, 700),
            errors: logan_seq::ErrorProfile::pacbio(0.08),
            ..ReadSimulator::uniform(12_000, 6.0)
        };
        let rs = sim.generate(31);
        let seqs: Vec<Seq> = rs.reads.iter().map(|r| r.seq.clone()).collect();
        let counts = count_kmers(&seqs, 17);
        for bounds in [
            ReliableBounds { lo: 2, hi: 8 },
            ReliableBounds { lo: 1, hi: 1000 },
        ] {
            let want = reliable_kmers(&counts, bounds);
            for shards in [1, 2, 7, 16] {
                let (distinct, got) = count_reliable_sharded(&seqs, 17, shards, bounds);
                assert_eq!(distinct, counts.len(), "shards={shards}");
                assert_eq!(got, want, "shards={shards} bounds={bounds:?}");
            }
        }
        // shards = 0 clamps instead of dividing by zero.
        let (distinct, _) = count_reliable_sharded(&seqs, 17, 0, ReliableBounds { lo: 2, hi: 8 });
        assert_eq!(distinct, counts.len());
    }

    #[test]
    fn shard_partition_is_total_and_balanced() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(5);
        let shards = 8;
        let mut sizes = vec![0usize; shards];
        for _ in 0..8_000 {
            // 34-bit codes mimic k=17 canonical space occupancy.
            let code: u64 = rng.gen_range(0..(1u64 << 34));
            let s = shard_of(code, shards);
            assert!(s < shards);
            sizes[s] += 1;
        }
        let (min, max) = (
            *sizes.iter().min().unwrap() as f64,
            *sizes.iter().max().unwrap() as f64,
        );
        assert!(max / min < 1.25, "shard skew too high: {sizes:?}");
    }

    #[test]
    fn depth_drives_multiplicity_of_true_kmers() {
        // Error-free reads at depth ~8: genomic k-mers should show
        // multiplicities well above 1.
        let sim = ReadSimulator {
            read_len: (400, 600),
            errors: logan_seq::ErrorProfile::perfect(),
            ..ReadSimulator::uniform(5_000, 8.0)
        };
        let rs = sim.generate(3);
        let seqs: Vec<Seq> = rs.reads.iter().map(|r| r.seq.clone()).collect();
        let counts = count_kmers(&seqs, 17);
        let mean = counts.values().map(|&c| c as f64).sum::<f64>() / counts.len() as f64;
        assert!(mean > 4.0, "mean multiplicity {mean}");
        let mut rng = StdRng::seed_from_u64(1);
        let foreign = random_seq(17, &mut rng);
        // A random 17-mer almost surely absent.
        let code = logan_seq::Kmer::from_bases(foreign.as_slice())
            .canonical()
            .code;
        assert!(!counts.contains_key(&code) || counts[&code] < 3);
    }
}
