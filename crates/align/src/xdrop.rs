//! The X-drop extension algorithm (Zhang et al. 2000; SeqAn
//! `extendSeedL`; paper §III, Algorithm 1).
//!
//! Semi-global extension: find the best-scoring alignment of *some*
//! prefix of the query against *some* prefix of the target, walking the
//! DP matrix one anti-diagonal at a time. Only three anti-diagonals are
//! live at any moment (`current`, `previous`, `two-prior` — paper
//! Fig. 1). After an anti-diagonal is computed:
//!
//! 1. every cell scoring below `best − X` is overwritten with −∞
//!    (the *X-drop* condition, applied with the best score known when
//!    the anti-diagonal started, exactly as the GPU kernel does);
//! 2. −∞ runs are trimmed from both ends, which yields the bounds of the
//!    next anti-diagonal (`ReduceAntiDiagFromStart/End` in Algorithm 1);
//! 3. the global best is raised to the anti-diagonal maximum.
//!
//! Termination: the trimmed anti-diagonal is empty (the alignment
//! *dropped*), or the last anti-diagonal (`m + n`) was computed.
//!
//! This scalar routine is the semantic ground truth for the GPU kernel in
//! `logan-core`: property tests assert bit-equality of scores, end
//! positions and cell counts between the two.

use crate::result::ExtensionResult;
use crate::simd::Engine;
use crate::NEG_INF;
use logan_seq::{Scoring, Seq};

/// One anti-diagonal: scores for `i ∈ [lo, lo + vals.len())`, where `i`
/// is the query-prefix index and the target index is `j = d − i`.
#[derive(Debug, Default, Clone)]
struct AntiDiag {
    vals: Vec<i32>,
    lo: usize,
}

impl AntiDiag {
    /// Score at query index `i`, or −∞ outside the live range.
    ///
    /// Contract: `i == usize::MAX` is a legal probe and reads as −∞.
    /// Callers computing a neighbour index with `wrapping_sub(1)` at
    /// `i = 0` rely on this; it is handled by an explicit check rather
    /// than by the range comparison, which only rejects `usize::MAX`
    /// incidentally (because `lo + vals.len()` never overflows for real
    /// diagonals).
    #[inline(always)]
    fn get(&self, i: usize) -> i32 {
        if i == usize::MAX || i < self.lo || i >= self.lo + self.vals.len() {
            NEG_INF
        } else {
            self.vals[i - self.lo]
        }
    }

    fn hi(&self) -> usize {
        debug_assert!(!self.vals.is_empty());
        self.lo + self.vals.len() - 1
    }
}

/// Extend from the origin: best semi-global alignment of a prefix of
/// `query` against a prefix of `target` under the X-drop condition.
///
/// `x` must be non-negative; `x = i32::MAX / 4` effectively disables
/// pruning and yields the exact semi-global optimum (used by the oracle
/// tests).
pub fn xdrop_extend(query: &Seq, target: &Seq, scoring: Scoring, x: i32) -> ExtensionResult {
    assert!(x >= 0, "X-drop parameter must be non-negative");
    let m = query.len();
    let n = target.len();
    if m == 0 || n == 0 {
        return ExtensionResult::zero();
    }
    let q = query.as_slice();
    let t = target.as_slice();

    let mut best: i32 = 0;
    let mut best_i: usize = 0;
    let mut best_d: usize = 0;
    let mut cells: u64 = 0;
    let mut iterations: u64 = 0;
    let mut max_width: usize = 1;
    let mut dropped = false;

    // d = 0 holds the single origin cell with score 0.
    let mut prev2 = AntiDiag::default(); // d - 2 (empty for now)
    let mut prev = AntiDiag {
        vals: vec![0],
        lo: 0,
    };
    let mut cur = AntiDiag::default();

    for d in 1..=(m + n) {
        // Candidate bounds derive from the previous live range (Algorithm
        // 1: the trimmed anti-diagonal defines the next one), clamped to
        // the matrix.
        let lo = prev.lo.max(d.saturating_sub(n));
        let hi = (prev.hi() + 1).min(d).min(m);
        if lo > hi {
            // The band slid off the matrix edge; nothing left to compute.
            break;
        }

        cur.lo = lo;
        cur.vals.clear();
        cur.vals.reserve(hi - lo + 1);
        let threshold = best - x;
        for i in lo..=hi {
            let j = d - i;
            // Diagonal move: consume one base of each sequence.
            let diag = if i >= 1 && j >= 1 {
                prev2.get(i - 1) + scoring.substitution(q[i - 1] == t[j - 1])
            } else {
                NEG_INF
            };
            // Vertical move: gap in the target (consume query base).
            let up = if i >= 1 {
                prev.get(i - 1) + scoring.gap
            } else {
                NEG_INF
            };
            // Horizontal move: gap in the query (consume target base).
            let left = if j >= 1 {
                prev.get(i) + scoring.gap
            } else {
                NEG_INF
            };
            let mut val = diag.max(up).max(left);
            if val < threshold {
                val = NEG_INF;
            }
            cur.vals.push(val);
        }
        cells += (hi - lo + 1) as u64;
        iterations += 1;

        // Trim -inf runs from both ends (ReduceAntiDiagFromStart/End).
        let first_live = cur.vals.iter().position(|&v| v > NEG_INF);
        match first_live {
            None => {
                dropped = true;
                break;
            }
            Some(k) => {
                let last_live = cur.vals.iter().rposition(|&v| v > NEG_INF).unwrap();
                cur.vals.drain(..k);
                cur.vals.truncate(last_live - k + 1);
                cur.lo += k;
            }
        }
        max_width = max_width.max(cur.vals.len());

        // Raise the global best to this anti-diagonal's maximum, taking
        // the smallest i on the earliest anti-diagonal as the tie-break —
        // the same rule the kernel's reduction follows.
        let (mut row_max, mut row_arg) = (NEG_INF, 0usize);
        for (k, &v) in cur.vals.iter().enumerate() {
            if v > row_max {
                row_max = v;
                row_arg = cur.lo + k;
            }
        }
        if row_max > best {
            best = row_max;
            best_i = row_arg;
            best_d = d;
        }

        // Rotate buffers: reuse allocations, as the GPU reuses its three
        // HBM anti-diagonal buffers.
        std::mem::swap(&mut prev2, &mut prev);
        std::mem::swap(&mut prev, &mut cur);
    }

    ExtensionResult {
        score: best,
        query_end: best_i,
        target_end: best_d - best_i,
        cells,
        iterations,
        max_width,
        dropped,
    }
}

/// An [`crate::seed_extend::Extender`] wrapping the X-drop extension
/// with a fixed scoring scheme, X, and compute [`Engine`].
#[derive(Debug, Clone, Copy)]
pub struct XDropExtender {
    /// Scoring scheme (linear gaps).
    pub scoring: Scoring,
    /// The X-drop threshold.
    pub x: i32,
    /// Which kernel computes each extension (bit-identical results
    /// either way; see [`crate::simd`]).
    pub engine: Engine,
}

impl XDropExtender {
    /// Create an extender running the scalar reference engine.
    pub fn new(scoring: Scoring, x: i32) -> XDropExtender {
        XDropExtender::with_engine(scoring, x, Engine::Scalar)
    }

    /// Create an extender with an explicit compute engine.
    pub fn with_engine(scoring: Scoring, x: i32, engine: Engine) -> XDropExtender {
        XDropExtender { scoring, x, engine }
    }
}

impl crate::seed_extend::Extender for XDropExtender {
    fn extend(&self, query: &Seq, target: &Seq) -> ExtensionResult {
        self.engine.extend(query, target, self.scoring, self.x)
    }

    fn match_score(&self) -> i32 {
        self.scoring.match_score
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::full::extension_oracle;
    use logan_seq::readsim::random_seq;
    use logan_seq::{ErrorModel, ErrorProfile};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const BIG_X: i32 = i32::MAX / 4;

    fn seq(s: &str) -> Seq {
        Seq::from_str_strict(s).unwrap()
    }

    #[test]
    fn empty_inputs_score_zero() {
        let s = seq("ACGT");
        let e = Seq::new();
        assert_eq!(
            xdrop_extend(&e, &s, Scoring::default(), 10),
            ExtensionResult::zero()
        );
        assert_eq!(
            xdrop_extend(&s, &e, Scoring::default(), 10),
            ExtensionResult::zero()
        );
    }

    #[test]
    fn identical_sequences_reach_the_corner() {
        let s = seq("ACGTACGTACGTACGT");
        let r = xdrop_extend(&s, &s, Scoring::default(), 5);
        assert_eq!(r.score, s.len() as i32);
        assert_eq!(r.query_end, s.len());
        assert_eq!(r.target_end, s.len());
        assert!(!r.dropped);
    }

    #[test]
    fn single_base() {
        let r = xdrop_extend(&seq("A"), &seq("A"), Scoring::default(), 3);
        assert_eq!(r.score, 1);
        assert_eq!((r.query_end, r.target_end), (1, 1));
        let r2 = xdrop_extend(&seq("A"), &seq("C"), Scoring::default(), 3);
        assert_eq!(r2.score, 0);
        assert_eq!((r2.query_end, r2.target_end), (0, 0));
    }

    #[test]
    fn divergent_sequences_drop_early() {
        // Query all-A, target all-T: every path scores negatively, so the
        // search dies once the score falls X below zero.
        let a: Seq = std::iter::repeat_n(logan_seq::Base::A, 500).collect();
        let t: Seq = std::iter::repeat_n(logan_seq::Base::T, 500).collect();
        let r = xdrop_extend(&a, &t, Scoring::default(), 10);
        assert_eq!(r.score, 0);
        assert!(r.dropped);
        // The explored region must be tiny compared to the full matrix.
        assert!(r.cells < 1_000, "explored {} cells", r.cells);
    }

    #[test]
    fn work_grows_with_x_on_divergent_input() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = random_seq(800, &mut rng);
        let b = random_seq(800, &mut rng);
        let mut last = 0u64;
        for x in [5, 20, 80, 320] {
            let r = xdrop_extend(&a, &b, Scoring::default(), x);
            assert!(r.cells >= last, "cells must grow with X");
            last = r.cells;
        }
    }

    #[test]
    fn big_x_matches_full_semiglobal_oracle() {
        let mut rng = StdRng::seed_from_u64(2);
        for trial in 0..30 {
            let n = 10 + (trial * 7) % 80;
            let a = random_seq(n, &mut rng);
            let template = random_seq(n, &mut rng);
            let (b, _) = ErrorModel::new(ErrorProfile::pacbio(0.15)).corrupt(&template, &mut rng);
            let r = xdrop_extend(&a, &b, Scoring::default(), BIG_X);
            let oracle = extension_oracle(&a, &b, Scoring::default());
            assert_eq!(r.score, oracle.score, "trial {trial}");
        }
    }

    #[test]
    fn score_monotone_in_x() {
        let mut rng = StdRng::seed_from_u64(3);
        let template = random_seq(600, &mut rng);
        let model = ErrorModel::new(ErrorProfile::pacbio(0.15));
        let (a, _) = model.corrupt(&template, &mut rng);
        let (b, _) = model.corrupt(&template, &mut rng);
        let mut prev_score = i32::MIN;
        for x in [2, 5, 10, 25, 50, 100, 400] {
            let r = xdrop_extend(&a, &b, Scoring::default(), x);
            assert!(
                r.score >= prev_score,
                "score should not decrease as X grows (x={x})"
            );
            prev_score = r.score;
        }
        // And with a generous X the noisy pair must align most of its span.
        let r = xdrop_extend(&a, &b, Scoring::default(), 400);
        assert!(r.score > (template.len() as f64 * 0.3) as i32);
    }

    #[test]
    fn symmetric_in_arguments() {
        let mut rng = StdRng::seed_from_u64(4);
        let template = random_seq(300, &mut rng);
        let model = ErrorModel::new(ErrorProfile::pacbio(0.12));
        let (a, _) = model.corrupt(&template, &mut rng);
        let (b, _) = model.corrupt(&template, &mut rng);
        for x in [10, 50, 200] {
            let fwd = xdrop_extend(&a, &b, Scoring::default(), x);
            let rev = xdrop_extend(&b, &a, Scoring::default(), x);
            assert_eq!(fwd.score, rev.score);
            assert_eq!(fwd.cells, rev.cells);
            // The best cell is on the same anti-diagonal; exact
            // coordinates may differ when ties break toward smallest i.
            assert_eq!(
                fwd.query_end + fwd.target_end,
                rev.query_end + rev.target_end
            );
        }
    }

    #[test]
    fn repeat_trap_is_cut_by_small_x() {
        // S = A-B-C vs R = A-D-C (paper §I, Frith et al. argument): with a
        // huge X the aligner bridges the unrelated middle and glues the
        // two matching flanks; a small X refuses the bridge. BLAST-like
        // scoring is required for the trap to exist at all: under the
        // unit scheme (+1/-1/-1) two *random* sequences drift upward
        // (~+0.3/base, Chvátal–Sankoff), so nothing ever drops.
        let scoring = Scoring::new(1, -2, -2);
        let mut rng = StdRng::seed_from_u64(5);
        let flank_a = random_seq(200, &mut rng);
        let flank_c = random_seq(200, &mut rng);
        let mid_b = random_seq(40, &mut rng);
        let mid_d = random_seq(40, &mut rng);
        let mut s = flank_a.clone();
        s.extend_from(&mid_b);
        s.extend_from(&flank_c);
        let mut r = flank_a.clone();
        r.extend_from(&mid_d);
        r.extend_from(&flank_c);

        let glued = xdrop_extend(&s, &r, scoring, BIG_X);
        let cut = xdrop_extend(&s, &r, scoring, 15);
        assert!(
            glued.score > flank_a.len() as i32 + 20,
            "large X should bridge the gap (score {})",
            glued.score
        );
        assert!(
            cut.score <= flank_a.len() as i32 + 10,
            "small X must stop at the first flank (score {})",
            cut.score
        );
        assert!(cut.dropped);
    }

    #[test]
    fn cells_bounded_by_full_matrix() {
        let mut rng = StdRng::seed_from_u64(6);
        let a = random_seq(200, &mut rng);
        let b = random_seq(150, &mut rng);
        let r = xdrop_extend(&a, &b, Scoring::default(), BIG_X);
        assert!(r.cells <= 200 * 150 + 200 + 150);
        assert_eq!(r.iterations, (200 + 150) as u64);
    }

    #[test]
    fn zero_x_terminates_on_the_first_antidiagonal() {
        // X = 0 prunes the two gap cells of anti-diagonal 1 (both score
        // -1 < best - 0), so the search dies before ever reaching the
        // first diagonal match — faithful Algorithm-1 behaviour.
        let s = seq("ACGTACGTAC");
        let r = xdrop_extend(&s, &s, Scoring::default(), 0);
        assert_eq!(r.score, 0);
        assert!(r.dropped);
        assert_eq!(r.cells, 2);
    }

    #[test]
    fn x_one_follows_perfect_match_diagonal() {
        // X = 1 keeps the gap cells alive just long enough for the
        // diagonal to take over; the band then collapses to (nearly) the
        // diagonal and the full match score is reached.
        let s = seq("ACGTACGTAC");
        let r = xdrop_extend(&s, &s, Scoring::default(), 1);
        assert_eq!(r.score, s.len() as i32);
        assert!(
            r.cells < (s.len() as u64 + 1).pow(2) / 2,
            "band must stay narrow"
        );
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_x_rejected() {
        let _ = xdrop_extend(&seq("A"), &seq("A"), Scoring::default(), -1);
    }

    #[test]
    fn antidiag_wrapping_sub_probe_reads_neg_inf() {
        // The documented `AntiDiag::get` contract: a caller probing the
        // `i - 1` neighbour at `i = 0` through `wrapping_sub` must read
        // −∞, exactly like any other out-of-range index.
        let diag = AntiDiag {
            vals: vec![3, 7, 1],
            lo: 2,
        };
        assert_eq!(diag.get(0usize.wrapping_sub(1)), NEG_INF);
        assert_eq!(diag.get(usize::MAX), NEG_INF);
        // Ordinary out-of-range probes on both sides, and in-range hits.
        assert_eq!(diag.get(1), NEG_INF);
        assert_eq!(diag.get(5), NEG_INF);
        assert_eq!(diag.get(2), 3);
        assert_eq!(diag.get(4), 1);
        // The empty diagonal reads −∞ everywhere, including usize::MAX.
        let empty = AntiDiag::default();
        assert_eq!(empty.get(0), NEG_INF);
        assert_eq!(empty.get(usize::MAX), NEG_INF);
    }

    #[test]
    fn max_width_tracks_band() {
        let mut rng = StdRng::seed_from_u64(7);
        let template = random_seq(400, &mut rng);
        let model = ErrorModel::new(ErrorProfile::pacbio(0.15));
        let (a, _) = model.corrupt(&template, &mut rng);
        let (b, _) = model.corrupt(&template, &mut rng);
        let narrow = xdrop_extend(&a, &b, Scoring::default(), 10);
        let wide = xdrop_extend(&a, &b, Scoring::default(), 200);
        assert!(narrow.max_width <= wide.max_width);
        assert!(wide.max_width <= 401);
    }
}
