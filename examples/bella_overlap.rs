//! Many-to-many overlap detection: the BELLA pipeline end to end.
//!
//! ```sh
//! cargo run --release --example bella_overlap
//! ```
//!
//! Simulates a small E. coli-like read set with ground truth, runs
//! k-mer counting → reliable-k-mer pruning → SpGEMM candidate
//! generation → binning → LOGAN alignment → adaptive threshold, and
//! scores precision/recall against the simulator's truth.

use logan::bella::{BellaConfig, BellaPipeline};
use logan::prelude::*;
use logan::seq::readsim::ReadSimulator;

fn main() {
    // ~40 kb genome at depth 12, 1.5–2.5 kb reads, 10% error.
    let sim = ReadSimulator {
        read_len: (1500, 2500),
        errors: ErrorProfile::pacbio(0.10),
        ..ReadSimulator::uniform(40_000, 12.0)
    };
    let rs = sim.generate(2024);
    println!(
        "simulated {} reads over a {} bp genome (depth {:.1})",
        rs.reads.len(),
        rs.genome.len(),
        rs.depth()
    );

    let config = BellaConfig {
        error_rate: 0.10,
        min_overlap: 1000,
        ..BellaConfig::with_x(50)
    };
    let pipeline = BellaPipeline::new(config);

    // Align on a simulated GPU (any other `AlignBackend` — the CPU
    // pool, a multi-GPU deployment, a heterogeneous fleet — slots into
    // the same call with identical results).
    let executor = LoganExecutor::new(DeviceSpec::v100(), LoganConfig::with_x(50));
    let (out, metrics) = pipeline.run_on_readset(&rs, &executor, 1000);

    println!(
        "k-mers: {} distinct, {} reliable (window {:?})",
        out.stats.distinct_kmers, out.stats.reliable_kmers, out.stats.bounds
    );
    println!(
        "candidates: {}; kept after adaptive threshold: {}",
        out.stats.candidates, out.stats.kept
    );
    println!("alignment work: {} DP cells", out.stats.total_cells);
    println!(
        "vs ground truth (>=1 kb overlaps): precision {:.3}, recall {:.3}, F1 {:.3}",
        metrics.precision,
        metrics.recall,
        metrics.f1()
    );

    // Show a few kept overlaps.
    for o in out.overlaps.iter().filter(|o| o.kept).take(5) {
        println!(
            "  read {:>3} ~ read {:>3}: score {:>5}, est. overlap {:>5} bp",
            o.r1, o.r2, o.result.score, o.est_overlap
        );
    }
}
