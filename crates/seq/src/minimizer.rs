//! (w,k)-window minimizer sketching, minimap2-style.
//!
//! A minimizer is the k-mer of lowest *rank* among the `w` consecutive
//! k-mers of a window; collecting the minimizers of every window
//! sketches a read down to roughly `2/(w+1)` of its k-mer positions
//! while guaranteeing that any two sequences sharing a `w + k - 1`-long
//! exact match share a minimizer. Ranks are an invertible hash of the
//! *canonical* k-mer code (never the raw code — low-complexity k-mers
//! like poly-A would otherwise dominate every window and wreck the
//! sketch's spread).
//!
//! Ties inside a window keep the **rightmost** occurrence, which is the
//! robust choice under single-base edits (minimap2 §2.1.1): an edit
//! upstream of the tied pair cannot flip which copy is selected.

use crate::kmer::CanonicalKmerIter;
use crate::seq::Seq;
use std::collections::VecDeque;

/// A selected minimizer: position of the k-mer in the read, its
/// canonical code, and which strand the canonical form came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Minimizer {
    /// Start position of the k-mer in the read.
    pub pos: u32,
    /// Canonical 2-bit packed code.
    pub code: u64,
    /// True if the forward-strand k-mer equals the canonical form.
    pub fwd: bool,
}

/// Invertible finalizer (splitmix64 tail) used to rank k-mers.
///
/// Invertibility means distinct codes get distinct ranks, so the
/// minimum of a window is unique per code and the deque tie-break below
/// only ever fires for *equal codes at different positions*.
#[inline]
pub fn minimizer_hash(code: u64) -> u64 {
    let mut z = code.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Extract the (w,k) minimizers of `seq`, deduplicated and in
/// ascending position order.
///
/// `w = 1` degenerates to "every canonical k-mer". A read with fewer
/// than `w` k-mers (but at least one) yields its single overall
/// minimum, so short reads are never sketched down to nothing.
pub fn minimizers(seq: &Seq, w: usize, k: usize) -> Vec<Minimizer> {
    assert!(w >= 1, "window size must be >= 1");
    let n_kmers = (seq.len() + 1).saturating_sub(k);
    let mut out: Vec<Minimizer> = Vec::with_capacity(2 * n_kmers / (w + 1) + 1);
    // Monotone deque of (rank, minimizer), increasing rank front to
    // back. `>=` when popping keeps the rightmost of equal-rank k-mers.
    let mut deque: VecDeque<(u64, Minimizer)> = VecDeque::new();
    for (pos, km, fwd) in CanonicalKmerIter::new(seq, k) {
        let m = Minimizer {
            pos: pos as u32,
            code: km.code,
            fwd,
        };
        let rank = minimizer_hash(km.code);
        while deque.back().is_some_and(|&(r, _)| r >= rank) {
            deque.pop_back();
        }
        deque.push_back((rank, m));
        // Drop the front once it falls out of the current window
        // [pos + 1 - w, pos].
        if pos + 1 >= w {
            while deque
                .front()
                .is_some_and(|&(_, f)| (f.pos as usize) + w <= pos)
            {
                deque.pop_front();
            }
            let front = deque.front().expect("deque holds current k-mer").1;
            if out.last() != Some(&front) {
                out.push(front);
            }
        }
    }
    // Fewer than w k-mers in total: no full window ever formed, emit
    // the overall minimum so the read still has a sketch.
    if out.is_empty() {
        if let Some(&(_, front)) = deque.front() {
            out.push(front);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Base;
    use crate::kmer::canonical_kmer;

    fn seq(s: &str) -> Seq {
        Seq::from_str_strict(s).unwrap()
    }

    /// Brute-force reference: for every window, scan all w k-mers and
    /// keep the rightmost one of minimum rank.
    fn brute_force(s: &Seq, w: usize, k: usize) -> Vec<Minimizer> {
        let n_kmers = (s.len() + 1).saturating_sub(k);
        let mins: Vec<Minimizer> = (0..n_kmers)
            .map(|pos| {
                let km = canonical_kmer(s, pos, k);
                let direct = crate::kmer::Kmer::from_bases(&s.as_slice()[pos..pos + k]);
                Minimizer {
                    pos: pos as u32,
                    code: km.code,
                    fwd: km.code == direct.code,
                }
            })
            .collect();
        let mut out: Vec<Minimizer> = Vec::new();
        if n_kmers == 0 {
            return out;
        }
        if n_kmers < w {
            let best = mins
                .iter()
                .copied()
                .max_by(|a, b| {
                    minimizer_hash(b.code)
                        .cmp(&minimizer_hash(a.code))
                        .then(a.pos.cmp(&b.pos))
                })
                .unwrap();
            return vec![best];
        }
        for start in 0..=(n_kmers - w) {
            let best = mins[start..start + w]
                .iter()
                .copied()
                .max_by(|a, b| {
                    minimizer_hash(b.code)
                        .cmp(&minimizer_hash(a.code))
                        .then(a.pos.cmp(&b.pos))
                })
                .unwrap();
            if out.last() != Some(&best) {
                out.push(best);
            }
        }
        out
    }

    fn pseudo_seq(len: usize, salt: u64) -> Seq {
        let mut state = salt.wrapping_mul(0x2545_f491_4f6c_dd1d) | 1;
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                Base::from_code((state % 4) as u8)
            })
            .collect()
    }

    #[test]
    fn matches_brute_force() {
        for salt in 0..6u64 {
            let s = pseudo_seq(120 + 17 * salt as usize, salt + 1);
            for (w, k) in [(1, 5), (4, 5), (8, 11), (11, 17), (5, 1)] {
                assert_eq!(
                    minimizers(&s, w, k),
                    brute_force(&s, w, k),
                    "salt={salt} w={w} k={k}"
                );
            }
        }
    }

    #[test]
    fn w1_selects_every_kmer() {
        let s = pseudo_seq(60, 9);
        let ms = minimizers(&s, 1, 7);
        assert_eq!(ms.len(), s.len() - 7 + 1);
        for (i, m) in ms.iter().enumerate() {
            assert_eq!(m.pos as usize, i);
            assert_eq!(m.code, canonical_kmer(&s, i, 7).code);
        }
    }

    #[test]
    fn density_is_near_two_over_w_plus_one() {
        let s = pseudo_seq(20_000, 3);
        let w = 8usize;
        let ms = minimizers(&s, w, 15);
        let density = ms.len() as f64 / (s.len() - 15 + 1) as f64;
        let expected = 2.0 / (w as f64 + 1.0);
        assert!(
            (density - expected).abs() < 0.05,
            "density {density:.3} vs expected {expected:.3}"
        );
    }

    #[test]
    fn strand_invariant_sketch() {
        // Minimizer codes of a read and its reverse complement are the
        // same multiset: canonical codes are strand-free and window
        // minima mirror.
        let s = pseudo_seq(300, 5);
        let rc = s.reverse_complement();
        let mut a: Vec<u64> = minimizers(&s, 6, 9).iter().map(|m| m.code).collect();
        let mut b: Vec<u64> = minimizers(&rc, 6, 9).iter().map(|m| m.code).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn short_read_yields_single_minimum() {
        let s = seq("ACGTACG"); // 3 k-mers at k=5, window 8 never fills
        let ms = minimizers(&s, 8, 5);
        assert_eq!(ms.len(), 1);
        assert_eq!(ms, brute_force(&s, 8, 5));
    }

    #[test]
    fn read_shorter_than_k_is_empty() {
        let s = seq("ACG");
        assert!(minimizers(&s, 4, 5).is_empty());
    }

    #[test]
    fn positions_strictly_increase() {
        let s = pseudo_seq(500, 11);
        let ms = minimizers(&s, 10, 13);
        for pair in ms.windows(2) {
            assert!(pair[0].pos < pair[1].pos);
        }
    }
}
