//! Offline, API-compatible subset of
//! [`parking_lot`](https://crates.io/crates/parking_lot), vendored so the
//! workspace builds without a crates.io mirror.
//!
//! [`Mutex`] and [`RwLock`] wrap their `std::sync` counterparts and keep
//! parking_lot's ergonomics: `lock()` / `read()` / `write()` return guards
//! directly instead of a poison `Result`. A poisoned lock (a panic while
//! held) just hands out the inner data, matching parking_lot's
//! no-poisoning semantics.

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion lock with non-poisoning `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

/// Reader-writer lock with non-poisoning `read()` / `write()`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a new lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|p| p.into_inner())
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|p| p.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }
}
