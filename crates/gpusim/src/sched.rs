//! The SM wave scheduler: block costs → simulated kernel time.
//!
//! Blocks are dealt round-robin to SMs in launch order (the hardware's
//! work distributor is close to this for uniform grids). Each SM runs a
//! processor-sharing simulation of its queue: up to `resident` blocks
//! co-execute; the SM's integer issue rate is scaled by an occupancy
//! factor `min(1, resident_warps / warps_to_saturate_sm)` — few warps
//! cannot hide issue latency, which is exactly why the paper's
//! intra-sequence-only configuration leaves the GPU idle (Table I) and
//! why LOGAN schedules threads proportional to X (§IV-B).
//!
//! Kernel time is `max(compute, memory) + launch overhead`: compute and
//! HBM traffic overlap on a GPU, so the slower of the two rules — the
//! same bound-and-bottleneck logic as the roofline of §VII.

use crate::spec::DeviceSpec;
use serde::{Deserialize, Serialize};

/// Cost summary of one block, fed to the scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockCost {
    /// Warp-level instructions the block issues.
    pub warp_instructions: u64,
    /// Serial dependency stall cycles (do not consume issue slots).
    pub stall_cycles: u64,
}

/// Result of scheduling one kernel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScheduleResult {
    /// Pure compute time (instruction issue), seconds.
    pub compute_time_s: f64,
    /// Pure memory time (HBM traffic / bandwidth), seconds.
    pub mem_time_s: f64,
    /// `max(compute, mem) + launch overhead`, seconds.
    pub kernel_time_s: f64,
    /// Number of waves (ceil(blocks / device-resident capacity)).
    pub waves: usize,
    /// Fraction of the device's integer issue capacity actually used
    /// during `compute_time_s` (1.0 = perfectly saturated).
    pub utilization: f64,
}

/// Schedule `costs` blocks of `threads` threads / `shared` bytes each,
/// with `total_hbm_bytes` of effective DRAM traffic, on `spec`.
pub fn schedule(
    spec: &DeviceSpec,
    costs: &[BlockCost],
    threads: usize,
    shared: usize,
    total_hbm_bytes: u64,
) -> ScheduleResult {
    let overhead = spec.launch_overhead_us * 1e-6;
    if costs.is_empty() {
        return ScheduleResult {
            compute_time_s: 0.0,
            mem_time_s: 0.0,
            kernel_time_s: overhead,
            waves: 0,
            utilization: 0.0,
        };
    }
    let resident = spec.blocks_resident_per_sm(threads, shared).max(1);
    let warps_per_block = threads.div_ceil(spec.warp_size);
    let sm_rate = spec.sm_int_warp_gips() * 1e9; // warp instr / s at full occupancy

    // Deal blocks to SMs round-robin in launch order.
    let sm_count = spec.sm_count;
    let mut queues: Vec<Vec<BlockCost>> = vec![Vec::new(); sm_count];
    for (i, c) in costs.iter().enumerate() {
        queues[i % sm_count].push(*c);
    }

    // Processor-sharing simulation per SM.
    let mut device_time: f64 = 0.0;
    for queue in &queues {
        device_time = device_time.max(sm_time(queue, resident, warps_per_block, spec, sm_rate));
    }

    let total_instr: u64 = costs.iter().map(|c| c.warp_instructions).sum();
    let mem_time_s = total_hbm_bytes as f64 / (spec.hbm_bw_gbps * 1e9);
    let compute_time_s = device_time;
    let kernel_time_s = compute_time_s.max(mem_time_s) + overhead;
    let utilization = if compute_time_s > 0.0 {
        (total_instr as f64 / (spec.int_warp_gips() * 1e9 * compute_time_s)).min(1.0)
    } else {
        0.0
    };
    ScheduleResult {
        compute_time_s,
        mem_time_s,
        kernel_time_s,
        waves: costs.len().div_ceil(resident * sm_count),
        utilization,
    }
}

/// Processor-sharing time for one SM's queue.
///
/// Two bounds combine: (a) issue-slot sharing among co-resident blocks
/// under the occupancy curve; (b) serial stall latency, which pipelines
/// across the `resident` concurrent block slots (independent blocks'
/// stalls overlap) but cannot be compressed below
/// `Σ stalls / resident`.
fn sm_time(
    queue: &[BlockCost],
    resident: usize,
    warps_per_block: usize,
    spec: &DeviceSpec,
    sm_rate: f64,
) -> f64 {
    if queue.is_empty() {
        return 0.0;
    }
    let occupancy = |c: usize| -> f64 {
        let warps = (c * warps_per_block) as f64;
        (warps / spec.warps_to_saturate_sm as f64).min(1.0)
    };

    let mut time = 0.0f64;
    let mut idx = 0usize; // next block to load
    let mut running: Vec<u64> = Vec::with_capacity(resident);
    while idx < queue.len() && running.len() < resident {
        running.push(queue[idx].warp_instructions);
        idx += 1;
    }
    while !running.is_empty() {
        let c = running.len();
        let rate = sm_rate * occupancy(c); // aggregate warp-instr/s
        let per_block_rate = rate / c as f64;
        // Advance until the smallest remaining block finishes.
        let min_rem = *running.iter().min().expect("non-empty");
        let dt = min_rem as f64 / per_block_rate;
        time += dt;
        for r in running.iter_mut() {
            *r -= min_rem;
        }
        running.retain(|&r| r > 0);
        while idx < queue.len() && running.len() < resident {
            running.push(queue[idx].warp_instructions);
            idx += 1;
        }
    }

    let total_stall_cycles: u64 = queue.iter().map(|c| c.stall_cycles).sum();
    let slots = resident.min(queue.len()).max(1);
    let stall_floor = total_stall_cycles as f64 / slots as f64 / (spec.clock_ghz * 1e9);
    time.max(stall_floor)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform(n: usize, instr: u64) -> Vec<BlockCost> {
        vec![
            BlockCost {
                warp_instructions: instr,
                stall_cycles: 0,
            };
            n
        ]
    }

    #[test]
    fn empty_launch_costs_only_overhead() {
        let spec = DeviceSpec::v100();
        let r = schedule(&spec, &[], 128, 0, 0);
        assert_eq!(r.compute_time_s, 0.0);
        assert!((r.kernel_time_s - 5e-6).abs() < 1e-12);
        assert_eq!(r.waves, 0);
    }

    #[test]
    fn single_block_uses_one_sm_poorly() {
        let spec = DeviceSpec::v100();
        let one = schedule(&spec, &uniform(1, 1_000_000), 128, 0, 0);
        let many = schedule(&spec, &uniform(12_800, 1_000_000), 128, 0, 0);
        // 12800 blocks spread over 80 SMs at good occupancy should be far
        // less than 12800x the single-block time — inter-sequence
        // parallelism is nearly free (Table I's 22,000x argument).
        assert!(many.compute_time_s < one.compute_time_s * 12_800.0 / 100.0);
        assert!(one.utilization < 0.01);
        assert!(many.utilization > 0.5);
    }

    #[test]
    fn more_threads_saturate_one_sm_better() {
        let spec = DeviceSpec::v100();
        // Same total instructions; one block; more warps hide latency.
        let narrow = schedule(&spec, &uniform(1, 1_000_000), 32, 0, 0);
        let wide = schedule(&spec, &uniform(1, 1_000_000), 512, 0, 0);
        assert!(wide.compute_time_s < narrow.compute_time_s);
    }

    #[test]
    fn compute_scales_inverse_with_blocks_until_saturation() {
        let spec = DeviceSpec::v100();
        let t80 = schedule(&spec, &uniform(80, 1_000_000), 128, 0, 0);
        let t160 = schedule(&spec, &uniform(160, 1_000_000), 128, 0, 0);
        // 80 blocks: one per SM at 4/16 occupancy. 160: two per SM at
        // 8/16 occupancy → same time, not double.
        assert!((t160.compute_time_s - t80.compute_time_s).abs() / t80.compute_time_s < 0.01);
    }

    #[test]
    fn memory_bound_kernel_ruled_by_bandwidth() {
        let spec = DeviceSpec::v100();
        // Tiny compute, huge traffic: 90 GB at 900 GB/s = 0.1 s.
        let r = schedule(&spec, &uniform(1000, 100), 128, 0, 90_000_000_000);
        assert!((r.mem_time_s - 0.1).abs() < 1e-9);
        assert!(r.kernel_time_s >= 0.1);
        assert!(r.compute_time_s < r.mem_time_s);
    }

    #[test]
    fn shared_memory_reduces_residency_and_slows_down() {
        let spec = DeviceSpec::v100();
        let blocks = uniform(2560, 1_000_000);
        // 48KB/block -> 2 resident/SM; 0KB -> 16 resident (thread-bound).
        let hog = schedule(&spec, &blocks, 128, 48 * 1024, 0);
        let lean = schedule(&spec, &blocks, 128, 0, 0);
        assert!(
            hog.compute_time_s > lean.compute_time_s * 1.5,
            "hog {} vs lean {}",
            hog.compute_time_s,
            lean.compute_time_s
        );
        assert!(hog.waves > lean.waves);
    }

    #[test]
    fn waves_counted() {
        let spec = DeviceSpec::v100();
        // resident for 1024-thread blocks = 2/SM → capacity 160.
        let r = schedule(&spec, &uniform(320, 1000), 1024, 0, 0);
        assert_eq!(r.waves, 2);
    }

    #[test]
    fn imbalanced_tail_extends_time() {
        let spec = DeviceSpec::tiny();
        let mut costs = uniform(16, 1000);
        costs.push(BlockCost {
            warp_instructions: 1_000_000,
            stall_cycles: 0,
        });
        let balanced = schedule(&spec, &uniform(17, 1000), 64, 0, 0);
        let skewed = schedule(&spec, &costs, 64, 0, 0);
        assert!(skewed.compute_time_s > 10.0 * balanced.compute_time_s);
    }

    #[test]
    fn utilization_bounded() {
        let spec = DeviceSpec::v100();
        let r = schedule(&spec, &uniform(100_000, 10_000), 128, 0, 0);
        assert!(r.utilization > 0.9 && r.utilization <= 1.0);
    }

    #[test]
    fn deterministic() {
        let spec = DeviceSpec::v100();
        let costs: Vec<BlockCost> = (0..1000)
            .map(|i| BlockCost {
                warp_instructions: 1000 + (i % 37) * 11,
                stall_cycles: i % 5,
            })
            .collect();
        let a = schedule(&spec, &costs, 128, 0, 1 << 20);
        let b = schedule(&spec, &costs, 128, 0, 1 << 20);
        assert_eq!(a, b);
    }

    #[test]
    fn stalls_set_a_latency_floor() {
        let spec = DeviceSpec::v100();
        // One block, almost no instructions, one second of stalls.
        let costs = vec![BlockCost {
            warp_instructions: 10,
            stall_cycles: (spec.clock_ghz * 1e9) as u64,
        }];
        let r = schedule(&spec, &costs, 128, 0, 0);
        assert!((r.compute_time_s - 1.0).abs() < 1e-3);
        // With many such blocks resident together the stalls pipeline.
        let many = vec![
            BlockCost {
                warp_instructions: 10,
                stall_cycles: (spec.clock_ghz * 1e6) as u64,
            };
            1600
        ];
        let rm = schedule(&spec, &many, 128, 0, 0);
        // 1600 blocks / 80 SMs = 20 per SM queue, 16 resident → the
        // 1 ms stalls overlap: well under 20 ms per SM.
        assert!(rm.compute_time_s < 0.005, "got {}", rm.compute_time_s);
    }
}
