//! The work-stealing heterogeneous fleet scheduler.
//!
//! A [`Fleet`] owns one [`AlignBackend`] per worker and drives them from
//! one shared queue: candidate pairs queue up heaviest-first, a shared
//! cursor marks the frontier, and each worker thread repeatedly
//! *steals* the next chunk — weight-quota sized by its own
//! [`AlignBackend::throughput_hint`] share of the remaining work — until
//! the queue drains. A device that lands cheap pairs simply comes back
//! for more; a device stuck on a repeat-heavy block steals nothing else
//! meanwhile. That is the dynamic alternative to the static up-front
//! partition of [`crate::multi_gpu::MultiGpu`] (paper §IV-C), whose
//! weakness on skewed BELLA workloads motivates this module: sequence
//! length predicts X-drop work only loosely, so equal-bases bins can
//! carry wildly unequal cell counts.
//!
//! Both schedules produce **bit-identical results**: every backend is
//! result-deterministic, per-pair results do not depend on batch
//! composition, and the fleet writes each result back to its input slot
//! (order-normalization), so which worker aligned which chunk is
//! unobservable in the output. `tests/backend_equivalence.rs` pins this.
//!
//! The chunk rule is guided self-scheduling on *weight*: worker *w*
//! with rate share `s_w` takes queued pairs while their cumulative
//! bases stay within `remaining_weight × s_w / 4`, clamped to
//! `[min_chunk, max_block(w)]` items. Early chunks are large
//! (amortizing per-block overhead), a heavy pair fills a chunk by
//! itself (a worker never commits to several possible stragglers at
//! once), the tail degrades to `min_chunk` pairs (smoothing the
//! makespan), and faster backends take proportionally bigger bites.
//! Rate shares start from the nameplate [`AlignBackend::throughput_hint`]
//! and switch to each worker's *observed* throughput after a cheap
//! calibration probe, and steals are paced by virtual device time —
//! see [`Fleet::align_pairs`] for both rules and DESIGN.md §9 for the
//! full argument.

use crate::backend::{AlignBackend, BackendReport, GpuBackend};
use crate::calibration::BALANCER_SETUP_S_PER_GPU;
use crate::executor::{LoganConfig, LoganExecutor};
use logan_align::{SeedExtendResult, XDropCpuAligner};
use logan_gpusim::DeviceSpec;
use logan_seq::readsim::ReadPair;
use serde::{Deserialize, Serialize};
use std::sync::Mutex;
use std::time::Instant;

/// Guided self-scheduling divisor: each steal is quota-limited to the
/// worker's hint share of a *quarter* of the remaining weight, so the
/// queue drains in geometrically shrinking chunks instead of one bite
/// per worker, and stragglers near the tail are stolen one by one.
const GUIDED_DIVISOR: u64 = 4;

/// What one worker hands back: its merged report, the results it
/// produced tagged with their input slots, and how many chunks it ran.
type WorkerOutput = (BackendReport, Vec<(usize, SeedExtendResult)>, usize);

/// Pair weight for scheduling: total bases, floored at 1 so zero-length
/// pairs still advance the queue (same floor as the static partition).
fn weight(p: &ReadPair) -> usize {
    (p.query.len() + p.target.len()).max(1)
}

/// Longest-processing-time order: indices sorted by weight descending,
/// index ascending — deterministic, shared by both schedules.
fn lpt_order(pairs: &[ReadPair]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..pairs.len()).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(weight(&pairs[i])), i));
    order
}

/// Greedy LPT partition of `pairs` into one bin per worker, bins
/// weighted by `hints`: each pair goes to the bin with the smallest
/// *normalized* load `load / hint` (ties to the lowest worker index).
/// Comparisons use exact integer cross-multiplication, so with equal
/// hints this reduces bit-for-bit to the classic unweighted LPT the
/// multi-GPU balancer has always used.
pub(crate) fn lpt_partition(pairs: &[ReadPair], hints: &[f64]) -> Vec<Vec<usize>> {
    let n = hints.len();
    assert!(n >= 1, "need at least one bin");
    // Scale hints to integers (milli-units) for exact comparisons.
    let h: Vec<u128> = hints
        .iter()
        .map(|&x| ((x * 1024.0).round() as u128).max(1))
        .collect();
    let mut bins: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut loads = vec![0u128; n];
    for i in lpt_order(pairs) {
        let mut dst = 0usize;
        for g in 1..n {
            // g is better than dst iff load_g / h_g < load_dst / h_dst.
            if loads[g] * h[dst] < loads[dst] * h[g] {
                dst = g;
            }
        }
        loads[dst] += weight(&pairs[i]) as u128;
        bins[dst].push(i);
    }
    debug_assert!(
        pairs.len() < n || bins.iter().all(|b| !b.is_empty()),
        "positive weights must fill every bin"
    );
    bins
}

/// Report of a fleet run: per-worker detail plus deployment aggregates.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FleetReport {
    /// Per-worker reports, in worker order.
    pub per_worker: Vec<BackendReport>,
    /// Pairs each worker aligned. Under the dynamic schedule these
    /// depend on thread timing and are **not** deterministic — only
    /// their sum is.
    pub assignment_sizes: Vec<usize>,
    /// Chunks each worker stole from the queue.
    pub chunks: Vec<usize>,
    /// Simulated deployment seconds: workers run concurrently, so the
    /// makespan is the slowest worker plus the serial per-worker host
    /// setup charge (same model as the static balancer).
    pub sim_time_s: f64,
    /// Measured host wall-clock of the whole call, seconds.
    pub wall_s: f64,
    /// Total DP cells across workers.
    pub total_cells: u64,
}

impl FleetReport {
    /// A report of no work on `workers` workers.
    pub fn empty(workers: usize) -> FleetReport {
        FleetReport {
            per_worker: vec![BackendReport::empty(); workers],
            assignment_sizes: vec![0; workers],
            chunks: vec![0; workers],
            sim_time_s: 0.0,
            wall_s: 0.0,
            total_cells: 0,
        }
    }

    /// Aggregate GCUPS in the simulated domain; 0.0 when no simulated
    /// time elapsed (empty run or all-host fleet).
    pub fn gcups(&self) -> f64 {
        if self.sim_time_s == 0.0 {
            return 0.0;
        }
        self.total_cells as f64 / self.sim_time_s / 1e9
    }

    /// Fold in a later run of the same fleet (streaming block batches):
    /// per-worker reports merge sequentially, times add.
    pub fn merge(&mut self, other: FleetReport) {
        self.sim_time_s += other.sim_time_s;
        self.wall_s += other.wall_s;
        self.total_cells += other.total_cells;
        for (i, rep) in other.per_worker.into_iter().enumerate() {
            match self.per_worker.get_mut(i) {
                Some(mine) => mine.merge(rep),
                None => self.per_worker.push(rep),
            }
        }
        for (i, n) in other.assignment_sizes.into_iter().enumerate() {
            match self.assignment_sizes.get_mut(i) {
                Some(mine) => *mine += n,
                None => self.assignment_sizes.push(n),
            }
        }
        for (i, n) in other.chunks.into_iter().enumerate() {
            match self.chunks.get_mut(i) {
                Some(mine) => *mine += n,
                None => self.chunks.push(n),
            }
        }
    }
}

/// A heterogeneous deployment: one worker thread per backend, all
/// pulling from one shared queue.
pub struct Fleet {
    backends: Vec<Box<dyn AlignBackend>>,
    /// Smallest chunk a worker may steal (≥ 1).
    pub min_chunk: usize,
    /// Serial host seconds charged per worker in the simulated makespan
    /// (the balancer setup charge of paper §IV-C).
    pub setup_s_per_worker: f64,
}

impl Fleet {
    /// Assemble a fleet from backend instances.
    ///
    /// # Panics
    ///
    /// Panics when `backends` is empty — a fleet with zero workers has
    /// no way to make progress, and letting it through would surface
    /// later as a division by zero in chunk sizing.
    pub fn new(backends: Vec<Box<dyn AlignBackend>>) -> Fleet {
        assert!(!backends.is_empty(), "fleet needs at least one backend");
        Fleet {
            backends,
            min_chunk: 1,
            setup_s_per_worker: BALANCER_SETUP_S_PER_GPU,
        }
    }

    /// A homogeneous fleet of `n` simulated GPUs of the given spec, each
    /// driven by an even share of the host's threads.
    ///
    /// # Panics
    ///
    /// Panics when `n == 0` (see [`Fleet::new`]).
    pub fn homogeneous_gpus(n: usize, spec: DeviceSpec, config: LoganConfig) -> Fleet {
        assert!(n >= 1, "need at least one GPU");
        let driver = (crate::backend::host_threads() / n).max(1);
        Fleet::new(
            (0..n)
                .map(|_| {
                    Box::new(GpuBackend::new(
                        LoganExecutor::new(spec.clone(), config),
                        driver,
                    )) as Box<dyn AlignBackend>
                })
                .collect(),
        )
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.backends.len()
    }

    /// Borrow a worker's backend.
    pub fn backend(&self, w: usize) -> &dyn AlignBackend {
        &*self.backends[w]
    }

    /// The static LPT partition this fleet would use in static mode:
    /// bins weighted by each worker's throughput hint.
    pub fn partition(&self, pairs: &[ReadPair]) -> Vec<Vec<usize>> {
        let hints: Vec<f64> = self.backends.iter().map(|b| b.throughput_hint()).collect();
        lpt_partition(pairs, &hints)
    }

    /// The throughput rate assumed for worker `w` when sizing chunks, in
    /// cells per second: the *observed* rate once the worker has aligned
    /// a chunk ([`Fleet::align_pairs`] measures cells per simulated
    /// second, or per host second for host-only backends), otherwise the
    /// nameplate [`AlignBackend::throughput_hint`]. Nameplate ratios
    /// routinely misstate effective throughput — a latency-bound
    /// workload can run at a fraction of a device's compute ceiling —
    /// and correcting from observation is exactly what a static weight
    /// floor cannot do.
    fn assumed_rate(&self, w: usize, observed: &[Option<f64>]) -> f64 {
        observed[w]
            .unwrap_or_else(|| self.backends[w].throughput_hint() * 1e9)
            .max(f64::MIN_POSITIVE)
    }

    /// How many items worker `w` steals from the heavy end of the queue
    /// (`prefix` weights, live range `[cur, hi)`): items are taken while
    /// their cumulative weight stays within the worker's rate share of
    /// `1/GUIDED_DIVISOR` of the remaining weight — so a heavy pair
    /// fills a chunk by itself while light pairs batch up — clamped to
    /// `[min_chunk, max_block]` items and at least one.
    fn chunk_len(
        &self,
        w: usize,
        prefix: &[u64],
        cur: usize,
        hi: usize,
        observed: &[Option<f64>],
        done: &[bool],
    ) -> usize {
        debug_assert!(cur < hi && hi < prefix.len());
        // Exited workers steal nothing more; their rates must not dilute
        // the shares of the workers still draining the tail.
        let total_rate: f64 = (0..self.backends.len())
            .filter(|&g| !done[g])
            .map(|g| self.assumed_rate(g, observed))
            .sum();
        let share = self.assumed_rate(w, observed) / total_rate.max(f64::MIN_POSITIVE);
        let remaining_w = prefix[hi] - prefix[cur];
        let quota = (remaining_w as f64 * share / GUIDED_DIVISOR as f64) as u64;
        let budget = prefix[cur] + quota.max(1);
        // Take items while the *next* one still fits the quota.
        let mut take = 1usize;
        while cur + take < hi && prefix[cur + take + 1] <= budget {
            take += 1;
        }
        // A backend's max_block caps the floor too: a fleet-level
        // min_chunk larger than what a backend accepts must not panic
        // the clamp (min > max) — the backend's cap wins.
        let cap = self.backends[w].max_block().max(1);
        take.clamp(self.min_chunk.min(cap), cap).min(hi - cur)
    }

    /// Align `pairs` under the dynamic work-stealing schedule. Results
    /// come back in input order (bit-identical to any other schedule);
    /// the report records which worker did how much.
    ///
    /// The queue is sorted heaviest-first (the list-scheduling order:
    /// potentially expensive pairs are in flight early, light pairs
    /// smooth the tail), and each steal is *weight-quota* limited
    /// (see the module docs): one heavy pair fills a chunk by itself,
    /// so a worker never commits to several possible stragglers at
    /// once, while light pairs batch into efficient blocks. A straggler
    /// therefore delays the makespan by at most its own cost — the
    /// property the static partition loses when pair weight (bases)
    /// misjudges pair cost.
    ///
    /// A worker's first steal is a *calibration probe*: `min_chunk` of
    /// the **lightest** queued pairs, taken from the tail. Once it has
    /// an observed rate (cells per simulated second; host second for
    /// host-only backends), its quota share switches from the nameplate
    /// hint to the observation — so a backend whose effective speed
    /// belies its spec sheet (a latency-bound device, a busy CPU) is
    /// never handed a nameplate-sized bite of the expensive head, and
    /// stops being overfed after one cheap probe.
    ///
    /// Steals are paced by **virtual device time**: each worker keeps a
    /// clock summing the device seconds of the chunks it has run
    /// (simulated seconds for device backends, host seconds for
    /// host-only ones), and a free worker may steal only when its clock
    /// is minimal among the free workers. That is exactly a real
    /// deployment — "whichever device finishes first pulls next" — and
    /// it decouples the schedule from how fast the *host* happens to
    /// execute each simulated chunk; without the gate, every worker
    /// would steal at host speed and a slow device would ingest work as
    /// fast as a quick one. Which worker aligned which chunk (and hence
    /// [`FleetReport::assignment_sizes`]) can still vary run to run;
    /// results never do.
    pub fn align_pairs(&self, pairs: &[ReadPair]) -> (Vec<SeedExtendResult>, FleetReport) {
        let start = Instant::now();
        let order = lpt_order(pairs);
        // prefix[j] = total weight of order[..j]; the chunk quota works
        // on remaining weight, not remaining count.
        let mut prefix: Vec<u64> = Vec::with_capacity(order.len() + 1);
        prefix.push(0);
        for &i in &order {
            prefix.push(prefix.last().unwrap() + weight(&pairs[i]) as u64);
        }
        let n_workers = self.backends.len();
        struct QueueState {
            /// Heavy frontier: next unstolen index in `order`.
            lo: usize,
            /// Light frontier: one past the last unstolen index.
            hi: usize,
            observed: Vec<Option<f64>>,
            /// Virtual device clock per worker, seconds.
            clock: Vec<f64>,
            /// Worker is currently executing a chunk.
            busy: Vec<bool>,
            /// Worker has exited (queue drained when it looked).
            done: Vec<bool>,
        }
        let queue = Mutex::new(QueueState {
            lo: 0,
            hi: order.len(),
            observed: vec![None; n_workers],
            clock: vec![0.0; n_workers],
            busy: vec![false; n_workers],
            done: vec![false; n_workers],
        });
        let turnstile = std::sync::Condvar::new();
        let worker_out = self.run_workers(|w, backend| {
            let mut report = BackendReport::empty();
            let mut placed: Vec<(usize, SeedExtendResult)> = Vec::new();
            let mut chunks = 0usize;
            loop {
                let (lo, hi) = {
                    let mut q = queue.lock().expect("fleet queue poisoned");
                    loop {
                        if q.lo >= q.hi {
                            q.done[w] = true;
                            turnstile.notify_all();
                            break;
                        }
                        // Steal when this worker is first in virtual
                        // time: lexicographic minimum among the free
                        // workers (exactly one qualifies), and no busy
                        // worker is running *behind* this clock — a busy
                        // worker's clock lower-bounds the virtual time
                        // of its next steal, so stealing past it would
                        // let a host-fast worker outrun a device-slow
                        // one.
                        let may_steal = (0..n_workers).filter(|&g| g != w && !q.done[g]).all(|g| {
                            if q.busy[g] {
                                q.clock[w] <= q.clock[g]
                            } else {
                                (q.clock[w], w) < (q.clock[g], g)
                            }
                        });
                        if may_steal {
                            break;
                        }
                        q = turnstile
                            .wait(q)
                            .expect("fleet queue poisoned while waiting");
                    }
                    if q.done[w] {
                        break;
                    }
                    let span = if q.observed[w].is_none() {
                        // Calibration probe off the light tail.
                        let take = self.min_chunk.max(1).min(q.hi - q.lo);
                        q.hi -= take;
                        (q.hi, q.hi + take)
                    } else {
                        let take = self.chunk_len(w, &prefix, q.lo, q.hi, &q.observed, &q.done);
                        let lo = q.lo;
                        q.lo += take;
                        (lo, lo + take)
                    };
                    q.busy[w] = true;
                    // The frontier moved and this worker left the free
                    // set: wake waiters so the next-lowest clock steals.
                    turnstile.notify_all();
                    span
                };
                // If align_block panics, this worker's thread unwinds
                // past the clock update below — without cleanup, its
                // `busy` flag would gate every other worker onto the
                // condvar forever and turn the panic into a process
                // hang. The guard retires the worker and wakes the rest
                // on any exit path; the panic itself then propagates
                // through the scope join.
                struct PanicRetire<'a, Q> {
                    queue: &'a Mutex<Q>,
                    turnstile: &'a std::sync::Condvar,
                    w: usize,
                    retire: fn(&mut Q, usize),
                    armed: bool,
                }
                impl<Q> Drop for PanicRetire<'_, Q> {
                    fn drop(&mut self) {
                        if self.armed {
                            if let Ok(mut q) = self.queue.lock() {
                                (self.retire)(&mut q, self.w);
                            }
                            self.turnstile.notify_all();
                        }
                    }
                }
                let mut guard = PanicRetire {
                    queue: &queue,
                    turnstile: &turnstile,
                    w,
                    retire: |q: &mut QueueState, w| {
                        q.busy[w] = false;
                        q.done[w] = true;
                    },
                    armed: true,
                };
                let idxs = &order[lo..hi];
                let block: Vec<ReadPair> = idxs.iter().map(|&i| pairs[i].clone()).collect();
                let (results, rep) = backend.align_block(&block);
                guard.armed = false;
                let chunk_device_s = if rep.sim_time_s > 0.0 {
                    rep.sim_time_s
                } else {
                    rep.wall_s
                };
                report.merge(rep);
                chunks += 1;
                placed.extend(idxs.iter().copied().zip(results));
                // Advance the virtual clock and publish the observed
                // lifetime rate for quota sizing.
                let mut q = queue.lock().expect("fleet queue poisoned");
                q.busy[w] = false;
                q.clock[w] += chunk_device_s;
                let elapsed = if report.sim_time_s > 0.0 {
                    report.sim_time_s
                } else {
                    report.wall_s
                };
                if report.total_cells > 0 && elapsed > 0.0 {
                    q.observed[w] = Some(report.total_cells as f64 / elapsed);
                }
                turnstile.notify_all();
            }
            (report, placed, chunks)
        });
        self.assemble(pairs.len(), worker_out, start)
    }

    /// Align `pairs` under the static LPT partition — the reference
    /// schedule ([`crate::multi_gpu::MultiGpu`]'s semantics): each
    /// worker gets its whole bin up front as one block. Workers still
    /// run concurrently, so wall-clock comparisons against
    /// [`Fleet::align_pairs`] isolate the *scheduling* policy.
    pub fn align_pairs_static(&self, pairs: &[ReadPair]) -> (Vec<SeedExtendResult>, FleetReport) {
        let start = Instant::now();
        let bins = self.partition(pairs);
        let worker_out = self.run_workers(|w, backend| {
            let bin = &bins[w];
            let block: Vec<ReadPair> = bin.iter().map(|&i| pairs[i].clone()).collect();
            let (results, rep) = backend.align_block(&block);
            let placed: Vec<(usize, SeedExtendResult)> = bin.iter().copied().zip(results).collect();
            (rep, placed, 1)
        });
        self.assemble(pairs.len(), worker_out, start)
    }

    /// Run `work(worker_index, backend)` on one scoped thread per
    /// backend, collecting outputs in worker order.
    fn run_workers<F>(&self, work: F) -> Vec<WorkerOutput>
    where
        F: Fn(usize, &dyn AlignBackend) -> WorkerOutput + Sync,
    {
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .backends
                .iter()
                .enumerate()
                .map(|(w, b)| {
                    let work = &work;
                    scope.spawn(move || work(w, &**b))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("fleet worker panicked"))
                .collect()
        })
    }

    /// Order-normalize per-worker outputs into input-order results and a
    /// deployment report.
    fn assemble(
        &self,
        n_pairs: usize,
        worker_out: Vec<WorkerOutput>,
        start: Instant,
    ) -> (Vec<SeedExtendResult>, FleetReport) {
        let mut slots: Vec<Option<SeedExtendResult>> = vec![None; n_pairs];
        let mut per_worker = Vec::with_capacity(worker_out.len());
        let mut assignment_sizes = Vec::with_capacity(worker_out.len());
        let mut chunk_counts = Vec::with_capacity(worker_out.len());
        let mut max_sim = 0.0f64;
        let mut total_cells = 0u64;
        for (report, placed, chunks) in worker_out {
            assignment_sizes.push(placed.len());
            chunk_counts.push(chunks);
            max_sim = max_sim.max(report.sim_time_s);
            total_cells += report.total_cells;
            for (i, r) in placed {
                debug_assert!(slots[i].is_none(), "pair {i} aligned twice");
                slots[i] = Some(r);
            }
            per_worker.push(report);
        }
        let results = slots
            .into_iter()
            .map(|s| s.expect("every pair stolen by exactly one worker"))
            .collect();
        let sim_time_s = max_sim + self.setup_s_per_worker * self.backends.len() as f64;
        (
            results,
            FleetReport {
                per_worker,
                assignment_sizes,
                chunks: chunk_counts,
                sim_time_s,
                wall_s: start.elapsed().as_secs_f64(),
                total_cells,
            },
        )
    }
}

impl AlignBackend for Fleet {
    fn name(&self) -> String {
        let members: Vec<String> = self.backends.iter().map(|b| b.name()).collect();
        format!("fleet({})", members.join("+"))
    }

    fn throughput_hint(&self) -> f64 {
        self.backends.iter().map(|b| b.throughput_hint()).sum()
    }

    fn max_block(&self) -> usize {
        usize::MAX
    }

    fn align_block(&self, block: &[ReadPair]) -> (Vec<SeedExtendResult>, BackendReport) {
        let (results, fr) = self.align_pairs(block);
        let mut merged = BackendReport::empty();
        for rep in fr.per_worker {
            merged.merge_concurrent(rep);
        }
        merged.blocks = 1; // one align_block call, however many chunks inside
        merged.sim_time_s = fr.sim_time_s; // makespan + setup, not per-worker max
        merged.wall_s = fr.wall_s;
        (results, merged)
    }

    /// The fleet's X-drop parameters when every member agrees (the only
    /// configuration the differential guarantees cover); `None` as soon
    /// as members disagree, which the BELLA pipeline rejects.
    fn xdrop_params(&self) -> Option<(logan_seq::Scoring, i32)> {
        let mut params = None;
        for b in &self.backends {
            match (params, b.xdrop_params()) {
                (_, None) => return None,
                (None, got) => params = got,
                (Some(p), Some(got)) if p == got => {}
                _ => return None,
            }
        }
        params
    }

    /// One lane per fleet member: a streaming producer can feed every
    /// worker's queue slot concurrently instead of serializing behind a
    /// single consumer.
    fn lanes(&self) -> usize {
        self.backends.len()
    }

    fn align_block_on(
        &self,
        lane: usize,
        block: &[ReadPair],
    ) -> (Vec<SeedExtendResult>, BackendReport) {
        self.backends[lane].align_block(block)
    }

    /// Each lane is one member, so its hint is that member's — a CPU
    /// lane must not be charged at the fleet's aggregate rate.
    fn throughput_hint_on(&self, lane: usize) -> f64 {
        self.backends[lane].throughput_hint()
    }
}

/// One worker of a parsed [`FleetSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FleetWorker {
    /// A simulated GPU.
    Gpu,
    /// A CPU pool with this many threads.
    Cpu {
        /// Worker threads of the pool.
        threads: usize,
    },
}

/// A textual fleet description, e.g. `2gpu+cpu` or `gpu+2cpu:4`:
/// `+`-separated terms, each `[count]gpu` or `[count]cpu[:threads]`
/// (count defaults to 1; CPU threads default to the machine width).
/// This is what `logan_cli --backend fleet:SPEC` parses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetSpec {
    /// The workers, in declaration order.
    pub workers: Vec<FleetWorker>,
}

impl std::str::FromStr for FleetSpec {
    type Err = String;

    fn from_str(s: &str) -> Result<FleetSpec, String> {
        let mut workers = Vec::new();
        for term in s.split('+') {
            let term = term.trim();
            let split = term
                .find(|c: char| !c.is_ascii_digit())
                .ok_or_else(|| format!("fleet term {term:?}: missing backend kind"))?;
            let count: usize = if split == 0 {
                1
            } else {
                term[..split]
                    .parse()
                    .map_err(|e| format!("fleet term {term:?}: {e}"))?
            };
            if count == 0 {
                return Err(format!("fleet term {term:?}: count must be at least 1"));
            }
            let (kind, threads) = match term[split..].split_once(':') {
                Some((kind, t)) => (
                    kind,
                    Some(
                        t.parse::<usize>()
                            .map_err(|e| format!("fleet term {term:?}: threads: {e}"))?,
                    ),
                ),
                None => (&term[split..], None),
            };
            let worker = match kind {
                "gpu" => {
                    if threads.is_some() {
                        return Err(format!("fleet term {term:?}: gpu takes no :threads"));
                    }
                    FleetWorker::Gpu
                }
                "cpu" => {
                    if threads == Some(0) {
                        return Err(format!("fleet term {term:?}: threads must be at least 1"));
                    }
                    FleetWorker::Cpu {
                        threads: threads.unwrap_or_else(crate::backend::host_threads),
                    }
                }
                other => return Err(format!("unknown fleet backend {other:?} in {term:?}")),
            };
            workers.extend(std::iter::repeat_n(worker, count));
        }
        if workers.is_empty() {
            return Err("empty fleet spec".into());
        }
        Ok(FleetSpec { workers })
    }
}

impl FleetSpec {
    /// Instantiate the fleet: GPUs get the given device spec and LOGAN
    /// config (and an even share of host driver threads); CPU workers
    /// align with the config's scoring, X and engine.
    pub fn build(&self, device: DeviceSpec, config: LoganConfig) -> Fleet {
        let gpus = self
            .workers
            .iter()
            .filter(|w| matches!(w, FleetWorker::Gpu))
            .count();
        let driver = (crate::backend::host_threads() / gpus.max(1)).max(1);
        Fleet::new(
            self.workers
                .iter()
                .map(|w| match *w {
                    FleetWorker::Gpu => Box::new(GpuBackend::new(
                        LoganExecutor::new(device.clone(), config),
                        driver,
                    )) as Box<dyn AlignBackend>,
                    FleetWorker::Cpu { threads } => Box::new(XDropCpuAligner::new(
                        threads,
                        config.scoring,
                        config.x,
                        config.engine,
                    )) as Box<dyn AlignBackend>,
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use logan_align::Engine;
    use logan_seq::readsim::PairSet;
    use logan_seq::Scoring;

    fn pairs(n: usize) -> Vec<ReadPair> {
        PairSet::generate_with_lengths(n, 0.15, 700, 1800, 11).pairs
    }

    fn mixed_fleet(x: i32) -> Fleet {
        let cfg = LoganConfig::with_x(x);
        Fleet::new(vec![
            Box::new(GpuBackend::new(
                LoganExecutor::new(DeviceSpec::v100(), cfg),
                1,
            )),
            Box::new(GpuBackend::new(
                LoganExecutor::new(DeviceSpec::v100(), cfg),
                1,
            )),
            Box::new(XDropCpuAligner::new(
                2,
                Scoring::default(),
                x,
                Engine::Scalar,
            )),
        ])
    }

    #[test]
    fn dynamic_equals_static_equals_reference() {
        let ps = pairs(40);
        let fleet = mixed_fleet(50);
        let reference = XDropCpuAligner::new(1, Scoring::default(), 50, Engine::Scalar);
        let (want, _) = reference.align_block(&ps);
        let (dynamic, dr) = fleet.align_pairs(&ps);
        let (stat, sr) = fleet.align_pairs_static(&ps);
        assert_eq!(dynamic, want, "dynamic schedule must not change results");
        assert_eq!(stat, want, "static schedule must not change results");
        assert_eq!(dr.assignment_sizes.iter().sum::<usize>(), ps.len());
        assert_eq!(sr.assignment_sizes.iter().sum::<usize>(), ps.len());
        assert_eq!(dr.total_cells, sr.total_cells);
        assert!(dr.chunks.iter().sum::<usize>() >= fleet.workers());
    }

    #[test]
    fn heterogeneous_chunks_follow_hints() {
        let fleet = mixed_fleet(30);
        // 1000 queued pairs of uniform weight 10.
        let prefix: Vec<u64> = (0..=1000u64).map(|i| i * 10).collect();
        // The GPU hint dwarfs the CPU hint, so at the same frontier the
        // GPU steals a strictly larger chunk.
        let fresh = vec![None; 3];
        let live = vec![false; 3];
        let gpu_chunk = fleet.chunk_len(0, &prefix, 0, 1000, &fresh, &live);
        let cpu_chunk = fleet.chunk_len(2, &prefix, 0, 1000, &fresh, &live);
        assert!(
            gpu_chunk > 50 * cpu_chunk.max(1),
            "{gpu_chunk} vs {cpu_chunk}"
        );
        // A heavy head pair fills a chunk by itself: quota-limited
        // stealing never commits a worker to two possible stragglers.
        let mut skewed = vec![0u64, 500_000];
        for i in 1..=100u64 {
            skewed.push(500_000 + i * 10);
        }
        assert_eq!(fleet.chunk_len(0, &skewed, 0, 101, &fresh, &live), 1);
        // And every chunk respects the floor and the remaining count.
        let two = vec![0u64, 10, 20];
        assert_eq!(fleet.chunk_len(2, &two, 1, 2, &fresh, &live), 1);
        assert!(fleet.chunk_len(0, &two, 0, 2, &fresh, &live) <= 2);
        // An observed rate overrides the nameplate hint: once the CPU
        // has demonstrated 10x the GPU's measured rate, it steals the
        // bigger chunk.
        let observed = vec![Some(1e8), Some(1e8), Some(1e9)];
        assert!(
            fleet.chunk_len(2, &prefix, 0, 1000, &observed, &live)
                > fleet.chunk_len(0, &prefix, 0, 1000, &observed, &live)
        );
    }

    #[test]
    fn empty_input_and_empty_report() {
        let fleet = mixed_fleet(30);
        let (res, rep) = fleet.align_pairs(&[]);
        assert!(res.is_empty());
        assert_eq!(rep.total_cells, 0);
        assert_eq!(rep.gcups(), 0.0, "empty run reports 0.0, not NaN");
        assert_eq!(rep.assignment_sizes, vec![0, 0, 0]);
        assert_eq!(FleetReport::empty(3).gcups(), 0.0);
    }

    #[test]
    fn fleet_report_merges_across_blocks() {
        let ps = pairs(24);
        let fleet = mixed_fleet(30);
        let (_, whole) = fleet.align_pairs(&ps);
        let mut merged = FleetReport::empty(fleet.workers());
        for chunk in ps.chunks(6) {
            let (_, rep) = fleet.align_pairs(chunk);
            merged.merge(rep);
        }
        assert_eq!(merged.total_cells, whole.total_cells);
        assert_eq!(merged.per_worker.len(), fleet.workers());
        assert_eq!(merged.assignment_sizes.iter().sum::<usize>(), ps.len());
        assert!(
            merged.sim_time_s > whole.sim_time_s,
            "per-block setup adds up"
        );
    }

    #[test]
    fn weighted_partition_reduces_to_classic_lpt_when_equal() {
        let ps = pairs(30);
        let equal = lpt_partition(&ps, &[1.0, 1.0, 1.0]);
        // Replicate the classic integer LPT by hand.
        let mut order: Vec<usize> = (0..ps.len()).collect();
        order.sort_by_key(|&i| (std::cmp::Reverse(weight(&ps[i])), i));
        let mut bins: Vec<Vec<usize>> = vec![Vec::new(); 3];
        let mut loads = [0usize; 3];
        for i in order {
            let dst = (0..3).min_by_key(|&g| (loads[g], g)).unwrap();
            loads[dst] += weight(&ps[i]);
            bins[dst].push(i);
        }
        assert_eq!(equal, bins);
    }

    #[test]
    fn weighted_partition_respects_hints() {
        let ps = pairs(60);
        let bins = lpt_partition(&ps, &[3.0, 1.0]);
        let load = |b: &Vec<usize>| -> usize { b.iter().map(|&i| weight(&ps[i])).sum() };
        let (l0, l1) = (load(&bins[0]), load(&bins[1]));
        // The 3× worker should carry roughly 3× the bases.
        let ratio = l0 as f64 / l1 as f64;
        assert!((2.0..4.5).contains(&ratio), "{ratio}");
    }

    #[test]
    fn fleet_is_itself_a_backend_with_lanes() {
        let ps = pairs(12);
        let fleet = mixed_fleet(50);
        let backend: &dyn AlignBackend = &fleet;
        assert_eq!(backend.lanes(), 3);
        let (whole, rep) = backend.align_block(&ps);
        let reference = XDropCpuAligner::new(1, Scoring::default(), 50, Engine::Scalar);
        let (want, _) = reference.align_block(&ps);
        assert_eq!(whole, want);
        assert_eq!(rep.pairs, ps.len());
        for lane in 0..backend.lanes() {
            let (got, _) = backend.align_block_on(lane, &ps);
            assert_eq!(got, want, "lane {lane} must agree");
        }
        assert!(backend.name().starts_with("fleet("));
    }

    #[test]
    fn fleet_spec_parses_and_builds() {
        let spec: FleetSpec = "2gpu+cpu:3".parse().unwrap();
        assert_eq!(
            spec.workers,
            vec![
                FleetWorker::Gpu,
                FleetWorker::Gpu,
                FleetWorker::Cpu { threads: 3 }
            ]
        );
        let fleet = spec.build(DeviceSpec::v100(), LoganConfig::with_x(20));
        assert_eq!(fleet.workers(), 3);
        assert!(fleet.backend(0).name().starts_with("gpu:"));
        assert!(fleet.backend(2).name().starts_with("cpu:3"));

        assert!("".parse::<FleetSpec>().is_err());
        assert!("2tpu".parse::<FleetSpec>().is_err());
        assert!("0gpu".parse::<FleetSpec>().is_err());
        assert!("gpu:4".parse::<FleetSpec>().is_err());
        assert!("cpu:x".parse::<FleetSpec>().is_err());
        assert!("2gpu+cpu:0".parse::<FleetSpec>().is_err());
        let bare: FleetSpec = "gpu".parse().unwrap();
        assert_eq!(bare.workers, vec![FleetWorker::Gpu]);
    }

    /// A backend that panics on its `n`th block (0-based).
    struct PanicOnBlock {
        fail_at: std::sync::atomic::AtomicUsize,
        inner: XDropCpuAligner,
    }

    impl AlignBackend for PanicOnBlock {
        fn name(&self) -> String {
            "panic-backend".into()
        }
        fn throughput_hint(&self) -> f64 {
            1.0
        }
        fn max_block(&self) -> usize {
            usize::MAX
        }
        fn align_block(&self, block: &[ReadPair]) -> (Vec<SeedExtendResult>, BackendReport) {
            use std::sync::atomic::Ordering;
            if self.fail_at.fetch_sub(1, Ordering::SeqCst) == 0 {
                panic!("injected backend failure");
            }
            self.inner.align_block(block)
        }
    }

    #[test]
    fn worker_panic_propagates_instead_of_hanging() {
        // A panic inside align_block must unwind out of align_pairs —
        // before the retire guard, the dead worker's `busy` flag gated
        // every other worker onto the condvar forever and the scope
        // join hung the process.
        let ps = pairs(30);
        for fail_at in [0usize, 2] {
            let fleet = Fleet::new(vec![
                Box::new(PanicOnBlock {
                    fail_at: std::sync::atomic::AtomicUsize::new(fail_at),
                    inner: XDropCpuAligner::new(1, Scoring::default(), 30, Engine::Scalar),
                }),
                Box::new(XDropCpuAligner::new(
                    1,
                    Scoring::default(),
                    30,
                    Engine::Scalar,
                )),
            ]);
            let outcome =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| fleet.align_pairs(&ps)));
            assert!(outcome.is_err(), "panic must propagate (fail_at={fail_at})");
        }
    }

    #[test]
    #[should_panic(expected = "at least one backend")]
    fn empty_fleet_rejected() {
        let _ = Fleet::new(Vec::new());
    }

    #[test]
    #[should_panic(expected = "at least one GPU")]
    fn zero_gpu_fleet_rejected() {
        let _ = Fleet::homogeneous_gpus(0, DeviceSpec::v100(), LoganConfig::with_x(10));
    }
}
