//! Minimizer seeding + colinear chaining — the minimap2-style
//! alternative to the SpGEMM candidate generator.
//!
//! Where the SpGEMM pairs reads sharing *any* reliable k-mer and picks
//! one witness by binning, this stage sketches each read down to its
//! (w,k) minimizers ([`logan_seq::minimizer`]), collects the shared
//! minimizers of a read pair as *anchors*, and chains colinear anchors
//! with a gap-cost DP. Only pairs whose best chain supports an overlap
//! of at least the pipeline's `min_overlap` floor are admitted to the
//! X-drop extender — fewer, better seeds for the same kernel.
//!
//! Sketches are post-filtered by the reliable k-mer set, so every
//! minimizer hit is also a shared reliable k-mer: the candidate set of
//! this path is a *subset* of the SpGEMM path's by construction (pinned
//! by `tests/minimizer_equivalence.rs`).

use crate::binning::overlap_estimate;
use crate::fxhash::{FxHashMap, FxHashSet};
use logan_seq::minimizer::{minimizers, Minimizer};
use logan_seq::{Seed, Seq};

/// A shared minimizer between two reads: its position in each, plus
/// whether the two occurrences came from the same strand (`fwd`) or
/// opposite strands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Anchor {
    /// Position in the first (query) read.
    pub qpos: u32,
    /// Position in the second (target) read.
    pub tpos: u32,
    /// Same-strand match (both canonical selections agree).
    pub fwd: bool,
}

/// Chaining knobs (minimap2's `-g`/`--max-chain-skip` family, reduced
/// to what the DP here needs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChainConfig {
    /// Maximum diagonal drift `|dq - dt|` between chained anchors —
    /// bounds how much indel the chain may absorb between anchors.
    pub max_gap: usize,
    /// Maximum distance (on either read) between chained anchors.
    pub max_dist: usize,
}

impl Default for ChainConfig {
    fn default() -> ChainConfig {
        ChainConfig {
            max_gap: 500,
            max_dist: 5000,
        }
    }
}

/// The best colinear chain of one read pair.
#[derive(Debug, Clone, PartialEq)]
pub struct Chain {
    /// Chained anchors in ascending query position.
    pub anchors: Vec<Anchor>,
    /// DP score (matched bases minus gap costs).
    pub score: f64,
    /// Strand class of the chain: `true` = same-strand anchors.
    pub fwd: bool,
}

/// Concave gap cost between consecutive anchors, minimap2-style:
/// linear in the diagonal drift plus a log term that lets one long gap
/// beat many small ones.
fn gap_cost(g: usize, k: usize) -> f64 {
    if g == 0 {
        0.0
    } else {
        0.01 * k as f64 * g as f64 + 0.5 * (g as f64).log2()
    }
}

/// Chain one strand class (anchors already sorted ascending by
/// `(qpos, tpos)`). `rev` flips the target-side colinearity test:
/// same-strand chains need `tpos` increasing with `qpos`,
/// opposite-strand chains need it decreasing.
fn chain_class(anchors: &[Anchor], k: usize, cfg: &ChainConfig, rev: bool) -> Option<Chain> {
    if anchors.is_empty() {
        return None;
    }
    let n = anchors.len();
    let mut f: Vec<f64> = vec![k as f64; n];
    let mut parent: Vec<usize> = (0..n).collect();
    for i in 1..n {
        let a = anchors[i];
        for j in 0..i {
            let b = anchors[j];
            if b.qpos >= a.qpos {
                continue;
            }
            let dq = (a.qpos - b.qpos) as usize;
            let dt = if rev {
                if b.tpos <= a.tpos {
                    continue;
                }
                (b.tpos - a.tpos) as usize
            } else {
                if b.tpos >= a.tpos {
                    continue;
                }
                (a.tpos - b.tpos) as usize
            };
            if dq.max(dt) > cfg.max_dist {
                continue;
            }
            let g = dq.abs_diff(dt);
            if g > cfg.max_gap {
                continue;
            }
            let gain = dq.min(dt).min(k) as f64 - gap_cost(g, k);
            let cand = f[j] + gain;
            // Strict `>`: the earliest predecessor in sort order wins
            // ties, keeping chains deterministic.
            if cand > f[i] {
                f[i] = cand;
                parent[i] = j;
            }
        }
    }
    // Best chain end; strict `>` again breaks ties to the earliest.
    let mut best = 0usize;
    for i in 1..n {
        if f[i] > f[best] {
            best = i;
        }
    }
    let mut chain_rev = vec![best];
    while parent[*chain_rev.last().unwrap()] != *chain_rev.last().unwrap() {
        chain_rev.push(parent[*chain_rev.last().unwrap()]);
    }
    chain_rev.reverse();
    Some(Chain {
        anchors: chain_rev.into_iter().map(|i| anchors[i]).collect(),
        score: f[best],
        fwd: !rev,
    })
}

/// Find the best colinear chain over a pair's anchors, considering the
/// same-strand and opposite-strand classes separately (an overlap is
/// one or the other; mixing strands in one chain is geometric
/// nonsense). Returns `None` only for an empty anchor list; a single
/// anchor yields a single-anchor chain of score `k`. Ties between the
/// two classes go to the same-strand chain.
pub fn chain_anchors(anchors: &[Anchor], k: usize, cfg: &ChainConfig) -> Option<Chain> {
    let mut fwd: Vec<Anchor> = anchors.iter().copied().filter(|a| a.fwd).collect();
    let mut rev: Vec<Anchor> = anchors.iter().copied().filter(|a| !a.fwd).collect();
    fwd.sort_unstable_by_key(|a| (a.qpos, a.tpos));
    rev.sort_unstable_by_key(|a| (a.qpos, std::cmp::Reverse(a.tpos)));
    let cf = chain_class(&fwd, k, cfg, false);
    let cr = chain_class(&rev, k, cfg, true);
    match (cf, cr) {
        (Some(a), Some(b)) => Some(if b.score > a.score { b } else { a }),
        (a, b) => a.or(b),
    }
}

/// Choose the extension seed from a chain: the anchor implying the
/// longest overlap, mirroring [`crate::binning::choose_seed`] exactly —
/// strict `>` ties to the earliest anchor in chain order, degenerate
/// anchors estimate 0, and an all-degenerate chain falls back to the
/// first anchor clamped in-bounds (the extender aligns every admitted
/// pair, so the seed must satisfy `qpos + len <= len1 && tpos + len <=
/// len2` no matter what).
pub fn choose_chain_seed(len1: usize, len2: usize, chain: &Chain, k: usize) -> (Seed, usize) {
    assert!(!chain.anchors.is_empty(), "chain without anchors");
    let mut best = (0usize, 0usize); // (anchor index, estimate)
    for (i, a) in chain.anchors.iter().enumerate() {
        let est = overlap_estimate(len1, len2, a.qpos as usize, a.tpos as usize, k);
        if est > best.1 {
            best = (i, est);
        }
    }
    let a = chain.anchors[best.0];
    let (mut qpos, mut tpos, mut len) = (a.qpos as usize, a.tpos as usize, k);
    if best.1 == 0 {
        len = k.min(len1).min(len2);
        qpos = qpos.min(len1 - len);
        tpos = tpos.min(len2 - len);
    }
    (Seed { qpos, tpos, len }, best.1)
}

/// The reads × minimizers index: one reliable-filtered (w,k) sketch per
/// read. The minimizer-path analogue of [`crate::matrix::KmerMatrix`],
/// built incrementally batch by batch (sketching is per-read, so any
/// batching produces the same index as one shot).
#[derive(Debug, Clone)]
pub struct MinimizerIndex {
    /// Window size.
    pub w: usize,
    /// K-mer length.
    pub k: usize,
    sketches: Vec<Vec<Minimizer>>,
    read_lens: Vec<usize>,
    nnz: usize,
}

impl MinimizerIndex {
    /// Start an empty index with the given sketch parameters.
    pub fn new(w: usize, k: usize) -> MinimizerIndex {
        MinimizerIndex {
            w: w.max(1),
            k,
            sketches: Vec::new(),
            read_lens: Vec::new(),
            nnz: 0,
        }
    }

    /// Sketch and append `reads`. Minimizers whose canonical code is not
    /// in `reliable` are dropped — the same pruning the SpGEMM path
    /// applies, and what makes this path's candidates a subset of its.
    pub fn push_batch(&mut self, reads: &[Seq], reliable: &FxHashSet<u64>) {
        for read in reads {
            let sketch: Vec<Minimizer> = minimizers(read, self.w, self.k)
                .into_iter()
                .filter(|m| reliable.contains(&m.code))
                .collect();
            self.nnz += sketch.len();
            self.sketches.push(sketch);
            self.read_lens.push(read.len());
        }
    }

    /// Reads indexed so far.
    pub fn n_reads(&self) -> usize {
        self.sketches.len()
    }

    /// Total retained minimizers (the index's analogue of matrix nnz).
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Length of read `i`.
    pub fn read_len(&self, i: usize) -> usize {
        self.read_lens[i]
    }

    /// The sketch of read `i`.
    pub fn sketch(&self, i: usize) -> &[Minimizer] {
        &self.sketches[i]
    }

    /// Column-major postings: minimizer code → `(read, pos, fwd)` in
    /// read order, then sketch order within a read.
    pub fn postings(&self) -> FxHashMap<u64, Vec<(u32, u32, bool)>> {
        let mut postings: FxHashMap<u64, Vec<(u32, u32, bool)>> = FxHashMap::default();
        for (read, sketch) in self.sketches.iter().enumerate() {
            for m in sketch {
                postings
                    .entry(m.code)
                    .or_default()
                    .push((read as u32, m.pos, m.fwd));
            }
        }
        postings
    }
}

/// One admitted-for-alignment candidate of the minimizer path.
#[derive(Debug, Clone, PartialEq)]
pub struct ChainedCandidate {
    /// Lower read id.
    pub r1: u32,
    /// Higher read id.
    pub r2: u32,
    /// Extension seed chosen from the best chain.
    pub seed: Seed,
    /// Overlap estimate of the seeding anchor.
    pub est: usize,
    /// Anchors in the best chain.
    pub anchors: u32,
    /// Chain DP score.
    pub score: f64,
}

/// Tiled candidate generation over the minimizer index — the chaining
/// mirror of [`crate::spgemm::spgemm_tiles`]. Tile `t` holds every
/// candidate whose lower read id falls in `[t·tile_rows,
/// (t+1)·tile_rows)`, sorted by `(r1, r2)`, so the concatenation of all
/// tiles equals [`chain_candidates`] exactly and the streaming pipeline
/// can feed blocks through the same producer/consumer machinery.
pub fn chain_tiles<'a>(
    index: &'a MinimizerIndex,
    tile_rows: usize,
    cfg: ChainConfig,
) -> ChainTiles<'a> {
    ChainTiles {
        postings: index.postings(),
        index,
        cfg,
        next_row: 0,
        tile_rows: tile_rows.max(1),
    }
}

/// Monolithic form: all candidates at once, sorted by `(r1, r2)`.
pub fn chain_candidates(index: &MinimizerIndex, cfg: ChainConfig) -> Vec<ChainedCandidate> {
    chain_tiles(index, index.n_reads().max(1), cfg)
        .flatten()
        .collect()
}

/// Iterator of chained-candidate tiles; see [`chain_tiles`].
pub struct ChainTiles<'a> {
    postings: FxHashMap<u64, Vec<(u32, u32, bool)>>,
    index: &'a MinimizerIndex,
    cfg: ChainConfig,
    next_row: usize,
    tile_rows: usize,
}

impl ChainTiles<'_> {
    /// Candidates of anchor row `i`: every read `j > i` sharing a
    /// retained minimizer, chained and seeded.
    fn row_candidates(&self, i: usize, out: &mut Vec<ChainedCandidate>) {
        let mut acc: FxHashMap<u32, Vec<Anchor>> = FxHashMap::default();
        for m in self.index.sketch(i) {
            if let Some(entries) = self.postings.get(&m.code) {
                for &(j, tpos, fwd) in entries {
                    if (j as usize) <= i {
                        continue;
                    }
                    acc.entry(j).or_default().push(Anchor {
                        qpos: m.pos,
                        tpos,
                        fwd: m.fwd == fwd,
                    });
                }
            }
        }
        let mut partners: Vec<u32> = acc.keys().copied().collect();
        partners.sort_unstable();
        for j in partners {
            let anchors = &acc[&j];
            let chain = chain_anchors(anchors, self.index.k, &self.cfg)
                .expect("partner with no anchors cannot be in the accumulator");
            let (seed, est) = choose_chain_seed(
                self.index.read_len(i),
                self.index.read_len(j as usize),
                &chain,
                self.index.k,
            );
            out.push(ChainedCandidate {
                r1: i as u32,
                r2: j,
                seed,
                est,
                anchors: chain.anchors.len() as u32,
                score: chain.score,
            });
        }
    }
}

impl Iterator for ChainTiles<'_> {
    /// One tile's candidates, sorted by `(r1, r2)`; may be empty.
    type Item = Vec<ChainedCandidate>;

    fn next(&mut self) -> Option<Vec<ChainedCandidate>> {
        if self.next_row >= self.index.n_reads() {
            return None;
        }
        let lo = self.next_row;
        let hi = (lo + self.tile_rows).min(self.index.n_reads());
        self.next_row = hi;
        let mut out = Vec::new();
        for i in lo..hi {
            self.row_candidates(i, &mut out);
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fwd_anchor(qpos: u32, tpos: u32) -> Anchor {
        Anchor {
            qpos,
            tpos,
            fwd: true,
        }
    }

    fn rev_anchor(qpos: u32, tpos: u32) -> Anchor {
        Anchor {
            qpos,
            tpos,
            fwd: false,
        }
    }

    const K: usize = 17;

    #[test]
    fn empty_anchor_list_has_no_chain() {
        assert!(chain_anchors(&[], K, &ChainConfig::default()).is_none());
    }

    #[test]
    fn single_anchor_chain_scores_k() {
        let chain = chain_anchors(&[fwd_anchor(10, 30)], K, &ChainConfig::default()).unwrap();
        assert_eq!(chain.anchors, vec![fwd_anchor(10, 30)]);
        assert_eq!(chain.score, K as f64);
        assert!(chain.fwd);
    }

    #[test]
    fn colinear_anchors_chain_together() {
        // Three anchors on a clean diagonal: all chain, score grows by
        // ~min(dq, dt, k) per link with zero gap cost.
        let anchors = [
            fwd_anchor(0, 100),
            fwd_anchor(50, 150),
            fwd_anchor(100, 200),
        ];
        let chain = chain_anchors(&anchors, K, &ChainConfig::default()).unwrap();
        assert_eq!(chain.anchors.len(), 3);
        assert_eq!(chain.score, (K + K + K) as f64);
    }

    #[test]
    fn off_diagonal_anchor_excluded() {
        // A repeat-induced anchor far off the diagonal must not join
        // the chain (its drift exceeds max_gap).
        let anchors = [
            fwd_anchor(0, 100),
            fwd_anchor(50, 150),
            fwd_anchor(60, 3000), // drift 2840 ≫ max_gap
            fwd_anchor(100, 200),
        ];
        let chain = chain_anchors(&anchors, K, &ChainConfig::default()).unwrap();
        assert_eq!(chain.anchors.len(), 3);
        assert!(chain.anchors.iter().all(|a| a.tpos != 3000));
    }

    #[test]
    fn distant_anchors_not_chained() {
        let cfg = ChainConfig {
            max_gap: 500,
            max_dist: 1000,
        };
        // Two diagonal anchors 5 kb apart: beyond max_dist, so the best
        // chain is a single anchor.
        let anchors = [fwd_anchor(0, 0), fwd_anchor(5000, 5000)];
        let chain = chain_anchors(&anchors, K, &cfg).unwrap();
        assert_eq!(chain.anchors.len(), 1);
    }

    #[test]
    fn reverse_strand_anchors_chain_antidiagonally() {
        // Opposite-strand anchors: query ascending, target descending.
        let anchors = [
            rev_anchor(0, 300),
            rev_anchor(50, 250),
            rev_anchor(100, 200),
        ];
        let chain = chain_anchors(&anchors, K, &ChainConfig::default()).unwrap();
        assert!(!chain.fwd);
        assert_eq!(chain.anchors.len(), 3);
        // Ascending qpos, descending tpos through the chain.
        for w in chain.anchors.windows(2) {
            assert!(w[0].qpos < w[1].qpos && w[0].tpos > w[1].tpos);
        }
    }

    #[test]
    fn strand_classes_do_not_mix() {
        // A mixed bag: 3 colinear forward anchors beat 2 reverse ones.
        let anchors = [
            fwd_anchor(0, 100),
            rev_anchor(10, 400),
            fwd_anchor(50, 150),
            rev_anchor(60, 350),
            fwd_anchor(100, 200),
        ];
        let chain = chain_anchors(&anchors, K, &ChainConfig::default()).unwrap();
        assert!(chain.fwd);
        assert_eq!(chain.anchors.len(), 3);
        assert!(chain.anchors.iter().all(|a| a.fwd));
    }

    #[test]
    fn gap_cost_prefers_tight_diagonal() {
        // Two competing second anchors: same spacing, one drifts 400
        // off-diagonal (allowed but penalized), one stays tight. The
        // chain through the tight anchor must win.
        let tight = [fwd_anchor(0, 0), fwd_anchor(100, 100)];
        let drifty = [fwd_anchor(0, 0), fwd_anchor(100, 500)];
        let cfg = ChainConfig::default();
        let t = chain_anchors(&tight, K, &cfg).unwrap();
        let d = chain_anchors(&drifty, K, &cfg).unwrap();
        assert!(t.score > d.score);
    }

    #[test]
    fn contained_read_chains_within_container() {
        // Query (500 bp, conceptually) fully contained in a long
        // target: anchors span the whole query at a constant offset.
        let anchors: Vec<Anchor> = (0..5)
            .map(|i| fwd_anchor(i * 100, 2000 + i * 100))
            .collect();
        let chain = chain_anchors(&anchors, K, &ChainConfig::default()).unwrap();
        assert_eq!(chain.anchors.len(), 5);
        let (seed, est) = choose_chain_seed(500, 10_000, &chain, K);
        // Containment: the estimate is bounded by the contained read.
        assert_eq!(est, 500);
        assert!(seed.qpos + seed.len <= 500 && seed.tpos + seed.len <= 10_000);
    }

    #[test]
    fn seed_choice_mirrors_binning_semantics() {
        // The anchor implying the longest overlap wins; ties go to the
        // earliest anchor in chain order.
        let chain = Chain {
            anchors: vec![fwd_anchor(40, 40), fwd_anchor(60, 60)],
            score: 2.0 * K as f64,
            fwd: true,
        };
        let (seed, est) = choose_chain_seed(100, 100, &chain, 10);
        assert_eq!((seed.qpos, seed.tpos), (40, 40));
        assert_eq!(est, 100);
    }

    #[test]
    fn single_anchor_seed_is_clamped_in_bounds() {
        // A degenerate single anchor (k-mer window does not fit) must
        // still produce an in-bounds seed with estimate 0, exactly like
        // choose_seed's all-degenerate fallback.
        let chain = Chain {
            anchors: vec![fwd_anchor(98, 99)],
            score: 10.0,
            fwd: true,
        };
        let (seed, est) = choose_chain_seed(100, 100, &chain, 10);
        assert_eq!(est, 0);
        assert_eq!(seed.len, 10);
        assert!(seed.qpos + seed.len <= 100 && seed.tpos + seed.len <= 100);
        // Reads shorter than k shrink the seed instead of overflowing.
        let chain = Chain {
            anchors: vec![fwd_anchor(7, 2)],
            score: 10.0,
            fwd: true,
        };
        let (seed, est) = choose_chain_seed(6, 4, &chain, 10);
        assert_eq!(est, 0);
        assert_eq!(seed.len, 4);
        assert!(seed.qpos + seed.len <= 6 && seed.tpos + seed.len <= 4);
    }

    #[test]
    fn chain_determinism() {
        let anchors = [
            fwd_anchor(0, 100),
            fwd_anchor(50, 150),
            fwd_anchor(50, 150),
            fwd_anchor(100, 200),
        ];
        let a = chain_anchors(&anchors, K, &ChainConfig::default()).unwrap();
        let b = chain_anchors(&anchors, K, &ChainConfig::default()).unwrap();
        assert_eq!(a, b);
    }

    fn index_of(reads: &[Seq], w: usize, k: usize) -> MinimizerIndex {
        // All canonical k-mers reliable: isolates the sketch/chain logic.
        let reliable: FxHashSet<u64> = crate::kmer_count::count_kmers(reads, k)
            .keys()
            .copied()
            .collect();
        let mut index = MinimizerIndex::new(w, k);
        index.push_batch(reads, &reliable);
        index
    }

    #[test]
    fn overlapping_reads_become_chained_candidates() {
        use logan_seq::readsim::random_seq;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(7);
        let genome = random_seq(400, &mut rng);
        let r1 = genome.subseq(0, 250);
        let r2 = genome.subseq(100, 400);
        let r3 = {
            let mut rng = StdRng::seed_from_u64(99);
            random_seq(250, &mut rng)
        };
        let index = index_of(&[r1, r2, r3], 5, 11);
        let cands = chain_candidates(&index, ChainConfig::default());
        assert_eq!(cands.len(), 1, "only the true overlap pairs: {cands:?}");
        let c = &cands[0];
        assert_eq!((c.r1, c.r2), (0, 1));
        assert!(c.anchors >= 2, "150 bp of exact overlap chains >1 anchor");
        // The seed's implied offset matches the true 100 bp stagger.
        assert_eq!(c.seed.qpos as i64 - c.seed.tpos as i64, 100);
        assert!(c.est >= 140, "estimate ~150 bp, got {}", c.est);
        assert!(c.seed.qpos + c.seed.len <= 250);
        assert!(c.seed.tpos + c.seed.len <= 300);
    }

    #[test]
    fn tiles_concatenate_to_the_monolithic_candidates() {
        use logan_seq::readsim::ReadSimulator;
        let sim = ReadSimulator {
            read_len: (300, 600),
            errors: logan_seq::ErrorProfile::pacbio(0.08),
            ..ReadSimulator::uniform(5_000, 6.0)
        };
        let rs = sim.generate(8);
        let seqs: Vec<Seq> = rs.reads.iter().map(|r| r.seq.clone()).collect();
        let index = index_of(&seqs, 8, 13);
        let whole = chain_candidates(&index, ChainConfig::default());
        assert!(!whole.is_empty(), "depth-6 set must produce candidates");
        for w in whole.windows(2) {
            assert!((w[0].r1, w[0].r2) < (w[1].r1, w[1].r2));
        }
        for tile_rows in [1, 2, 7, 64, 10_000] {
            let tiled: Vec<ChainedCandidate> =
                chain_tiles(&index, tile_rows, ChainConfig::default())
                    .flatten()
                    .collect();
            assert_eq!(tiled, whole, "tile_rows={tile_rows}");
        }
        assert_eq!(chain_tiles(&index, 7, ChainConfig::default()).count(), {
            index.n_reads().div_ceil(7)
        });
        // tile_rows = 0 clamps to 1 instead of never advancing.
        assert_eq!(
            chain_tiles(&index, 0, ChainConfig::default()).count(),
            index.n_reads()
        );
    }

    #[test]
    fn incremental_index_matches_one_shot() {
        use logan_seq::readsim::ReadSimulator;
        let sim = ReadSimulator {
            read_len: (200, 500),
            errors: logan_seq::ErrorProfile::pacbio(0.08),
            ..ReadSimulator::uniform(8_000, 5.0)
        };
        let rs = sim.generate(44);
        let seqs: Vec<Seq> = rs.reads.iter().map(|r| r.seq.clone()).collect();
        let reliable: FxHashSet<u64> = crate::kmer_count::count_kmers(&seqs, 13)
            .keys()
            .copied()
            .collect();
        let mut whole = MinimizerIndex::new(8, 13);
        whole.push_batch(&seqs, &reliable);
        let want = chain_candidates(&whole, ChainConfig::default());
        for batch in [1, 3, 17, 1000] {
            let mut index = MinimizerIndex::new(8, 13);
            for chunk in seqs.chunks(batch) {
                index.push_batch(chunk, &reliable);
            }
            assert_eq!(index.n_reads(), seqs.len());
            assert_eq!(index.nnz(), whole.nnz(), "batch={batch}");
            assert_eq!(
                chain_candidates(&index, ChainConfig::default()),
                want,
                "batch={batch}"
            );
        }
    }

    #[test]
    fn no_self_pairs_and_empty_index() {
        let index = MinimizerIndex::new(8, 13);
        assert!(chain_candidates(&index, ChainConfig::default()).is_empty());
        // A self-repetitive read must not pair with itself.
        let r = Seq::from_str_strict("ACGTACGTACGTACGTACGT").unwrap();
        let index = index_of(&[r], 2, 8);
        assert!(chain_candidates(&index, ChainConfig::default()).is_empty());
    }
}
