//! `minimizer_bench` — recall/cost of the minimizer + chaining seeder
//! against the SpGEMM path (ISSUE 7's tentpole numbers; not a paper
//! artifact).
//!
//! On a seeded `readsim` data set with ground truth, both seeders run
//! the full BELLA pipeline at the default `min_overlap` (2000 bp); the
//! sweep varies the sketch parameters (w,k) and records, per
//! configuration: candidate pairs aligned, DP cells spent, and
//! recall/precision against the simulator's true overlaps. The SpGEMM
//! path aligns every pair sharing one reliable k-mer; the minimizer
//! path aligns only pairs whose best colinear chain supports the
//! `min_overlap` floor — the "fewer, better seeds" claim, quantified.
//!
//! Asserted at the bottom (the PR's acceptance bar): at the default
//! (w=8, k=17), the minimizer seeder reaches ≥ 95% of the SpGEMM
//! path's recall while aligning ≤ 50% of its candidate pairs.
//!
//! ```sh
//! cargo run --release -p logan-bench --bin minimizer_bench            # full
//! cargo run --release -p logan-bench --bin minimizer_bench -- --quick # smoke
//! ```
//!
//! Results land in `results/minimizer_bench.json` (or
//! `LOGAN_RESULTS_DIR`).

use logan_align::{Engine, XDropCpuAligner};
use logan_bella::{BellaConfig, BellaPipeline, Seeder};
use logan_bench::{heading, write_json, BenchScale, Table};
use logan_seq::readsim::{ReadSet, ReadSimulator};
use logan_seq::{ErrorProfile, Scoring};
use serde::Serialize;

const X: i32 = 50;
const MIN_OVERLAP: usize = 2000;
const DEFAULT_W: usize = 8;
const DEFAULT_K: usize = 17;

#[derive(Serialize, Clone)]
struct Row {
    seeder: String,
    w: usize,
    k: usize,
    candidates: usize,
    kept: usize,
    aligned_cells: u64,
    recall: f64,
    precision: f64,
    f1: f64,
    /// Candidates relative to the SpGEMM baseline at the same k.
    candidate_ratio: f64,
    /// Recall relative to the SpGEMM baseline at the same k.
    recall_ratio: f64,
}

fn dataset(quick: bool, seed: u64) -> ReadSet {
    // Reads average 3.5 kb so the 2 kb overlap floor sits at a
    // realistic ~57% of the read length; 10% error is the error regime
    // the in-repo pipeline tests run at (k=17 anchors survive at
    // usable density).
    let genome_len = if quick { 40_000 } else { 100_000 };
    let sim = ReadSimulator {
        read_len: (2_500, 4_500),
        errors: ErrorProfile::pacbio(0.10),
        ..ReadSimulator::uniform(genome_len, 10.0)
    };
    sim.generate(seed)
}

fn run(rs: &ReadSet, seeder: Seeder, w: usize, k: usize) -> (usize, usize, u64, f64, f64, f64) {
    let cfg = BellaConfig {
        k,
        min_overlap: MIN_OVERLAP,
        seeder,
        minimizer_w: w,
        ..BellaConfig::with_x(X)
    };
    let backend = XDropCpuAligner::new(4, Scoring::default(), X, Engine::from_env());
    let (out, metrics) = BellaPipeline::new(cfg).run_on_readset(rs, &backend, MIN_OVERLAP);
    (
        out.stats.candidates,
        out.stats.kept,
        out.stats.total_cells,
        metrics.recall,
        metrics.precision,
        metrics.f1(),
    )
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let scale = BenchScale::from_env();
    let rs = dataset(quick, scale.seed);
    let truth = rs.true_overlaps(MIN_OVERLAP).len();
    eprintln!(
        "[minimizer_bench] {} reads, {} true overlaps >= {} bp{}",
        rs.reads.len(),
        truth,
        MIN_OVERLAP,
        if quick { " (quick)" } else { "" }
    );

    heading(format!(
        "Minimizer seeding vs SpGEMM ({} reads, min_overlap {})",
        rs.reads.len(),
        MIN_OVERLAP
    ));

    let sweep: &[(usize, usize)] = if quick {
        &[(DEFAULT_W, DEFAULT_K)]
    } else {
        &[
            (4, DEFAULT_K),
            (DEFAULT_W, DEFAULT_K),
            (12, DEFAULT_K),
            (DEFAULT_W, 15),
            (DEFAULT_W, 19),
        ]
    };

    let mut rows: Vec<Row> = Vec::new();
    let mut table = Table::new(&[
        "seeder",
        "w",
        "k",
        "candidates",
        "kept",
        "cells",
        "recall",
        "precision",
        "cand ratio",
    ]);

    // One SpGEMM baseline per distinct k in the sweep.
    let mut ks: Vec<usize> = sweep.iter().map(|&(_, k)| k).collect();
    ks.sort_unstable();
    ks.dedup();
    let mut baselines = std::collections::HashMap::new();
    for &k in &ks {
        eprintln!("[minimizer_bench] spgemm baseline k={k}");
        let (cands, kept, cells, recall, precision, f1) = run(&rs, Seeder::SpGemm, 0, k);
        rows.push(Row {
            seeder: "spgemm".into(),
            w: 0,
            k,
            candidates: cands,
            kept,
            aligned_cells: cells,
            recall,
            precision,
            f1,
            candidate_ratio: 1.0,
            recall_ratio: 1.0,
        });
        table.row(vec![
            "spgemm".into(),
            "-".into(),
            k.to_string(),
            cands.to_string(),
            kept.to_string(),
            cells.to_string(),
            format!("{recall:.3}"),
            format!("{precision:.3}"),
            "1.00".into(),
        ]);
        baselines.insert(k, (cands, recall));
    }

    let mut default_ratios = None;
    for &(w, k) in sweep {
        eprintln!("[minimizer_bench] minimizer w={w} k={k}");
        let (cands, kept, cells, recall, precision, f1) = run(&rs, Seeder::Minimizer, w, k);
        let &(base_cands, base_recall) = &baselines[&k];
        let candidate_ratio = cands as f64 / base_cands.max(1) as f64;
        let recall_ratio = if base_recall > 0.0 {
            recall / base_recall
        } else {
            1.0
        };
        rows.push(Row {
            seeder: "minimizer".into(),
            w,
            k,
            candidates: cands,
            kept,
            aligned_cells: cells,
            recall,
            precision,
            f1,
            candidate_ratio,
            recall_ratio,
        });
        table.row(vec![
            "minimizer".into(),
            w.to_string(),
            k.to_string(),
            cands.to_string(),
            kept.to_string(),
            cells.to_string(),
            format!("{recall:.3}"),
            format!("{precision:.3}"),
            format!("{candidate_ratio:.2}"),
        ]);
        if (w, k) == (DEFAULT_W, DEFAULT_K) {
            default_ratios = Some((candidate_ratio, recall_ratio));
        }
    }
    println!("{}", table.render());

    // The acceptance bar, asserted on every run (quick included — the
    // premerge smoke re-checks it).
    let (candidate_ratio, recall_ratio) =
        default_ratios.expect("sweep always contains the default (w, k)");
    println!(
        "default (w={DEFAULT_W}, k={DEFAULT_K}): {:.1}% of SpGEMM candidates at {:.1}% of its recall",
        100.0 * candidate_ratio,
        100.0 * recall_ratio
    );
    assert!(
        recall_ratio >= 0.95,
        "minimizer recall ratio {recall_ratio:.3} < 0.95 of SpGEMM"
    );
    assert!(
        candidate_ratio <= 0.50,
        "minimizer candidate ratio {candidate_ratio:.3} > 0.50 of SpGEMM"
    );

    write_json("minimizer_bench", &rows);
}
