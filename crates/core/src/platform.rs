//! Calibrated CPU platform models.
//!
//! The paper's CPU baselines run on machines we do not have: a
//! dual-socket POWER9 (168 threads, SeqAn's scalar `extendSeedL`) and a
//! dual-socket Xeon Gold 6148 "Skylake" (80 threads, ksw2's SSE2
//! kernel). We *execute* the baseline algorithms for real (in
//! `logan-align`) and measure their work in DP cells; a platform model
//! then converts cells into that machine's seconds:
//!
//! `time = cells / sustained_cups + pairs × per_call_overhead`
//!
//! The two constants per platform are calibrated once against a single
//! row of the corresponding paper table (documented per constructor) and
//! reused for every other row and both BELLA tables — so every *trend*
//! is produced by the measured algorithm behaviour, not by the model.

use serde::Serialize;

/// A CPU machine model in the `cells → seconds` sense.
// `name` is a `&'static str`, so this model serializes but does not
// round-trip (there is nothing to borrow from at deserialization time).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct CpuPlatformModel {
    /// Human-readable platform name.
    pub name: &'static str,
    /// Hardware threads the baseline uses.
    pub threads: usize,
    /// Sustained machine-wide cell updates per second.
    pub sustained_cups: f64,
    /// Fixed per-alignment-call overhead, seconds (dispatch, setup —
    /// dominates when X is small and bands are thin).
    pub per_call_overhead_s: f64,
}

impl CpuPlatformModel {
    /// POWER9 × SeqAn `extendSeedL`, 168 OpenMP threads.
    ///
    /// Calibration: Table II's X=10 row (5.1 s for 100 K pairs) against
    /// the measured X-drop cell count of the same workload
    /// (≈ 15 G cells) gives ≈ 3.0 G CUPS machine-wide
    /// (≈ 18 M CUPS/thread — consistent with scalar SeqAn measurements
    /// on comparable cores).
    pub fn power9_seqan() -> CpuPlatformModel {
        CpuPlatformModel {
            name: "2× POWER9 (168 thr) · SeqAn extendSeedL",
            threads: 168,
            sustained_cups: 3.0e9,
            per_call_overhead_s: 20e-6,
        }
    }

    /// Xeon Gold 6148 × ksw2 (`extz`, SSE2), 80 threads.
    ///
    /// Calibration: Table III's Z=5000 row (3213 s for 100 K pairs)
    /// against the measured ksw2 cell count with the Z-derived band
    /// (≈ 2.5 T cells) gives ≈ 0.9 G CUPS machine-wide; the flat low-Z
    /// region of Table III (≈ 7 s regardless of Z ≤ 100) pins the
    /// per-call overhead at ≈ 30 µs.
    pub fn skylake_ksw2() -> CpuPlatformModel {
        CpuPlatformModel {
            name: "2× Xeon Gold 6148 (80 thr) · ksw2 extz SSE2",
            threads: 80,
            sustained_cups: 0.9e9,
            per_call_overhead_s: 30e-6,
        }
    }

    /// Seconds this platform takes for `cells` of DP work across
    /// `calls` alignment invocations.
    pub fn time_s(&self, cells: u64, calls: usize) -> f64 {
        cells as f64 / self.sustained_cups + calls as f64 * self.per_call_overhead_s
    }

    /// The platform's GCUPS on a given workload.
    pub fn gcups(&self, cells: u64, calls: usize) -> f64 {
        let t = self.time_s(cells, calls);
        if t == 0.0 {
            return 0.0;
        }
        cells as f64 / t / 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_dominates_small_work() {
        let m = CpuPlatformModel::skylake_ksw2();
        // 100 K tiny calls: ≥ 3 s of pure overhead.
        let t = m.time_s(1_000_000, 100_000);
        assert!(t > 3.0 && t < 3.1, "{t}");
    }

    #[test]
    fn cells_dominate_large_work() {
        let m = CpuPlatformModel::skylake_ksw2();
        let t = m.time_s(2_500_000_000_000, 100_000);
        assert!(t > 2500.0 && t < 2900.0, "{t}");
    }

    #[test]
    fn seqan_calibration_point() {
        let m = CpuPlatformModel::power9_seqan();
        // ~15 G cells over 200 K extension calls ≈ 5 s + 4 s overhead?
        // No: 200 K calls × 20 µs = 4 s... the calibration uses 100 K
        // *pair* calls (SeqAn is invoked once per pair in BELLA's loop).
        let t = m.time_s(15_000_000_000, 100_000);
        assert!(t > 4.5 && t < 8.5, "{t}");
    }

    #[test]
    fn gcups_bounded_by_sustained() {
        let m = CpuPlatformModel::power9_seqan();
        assert!(m.gcups(1 << 40, 0) <= m.sustained_cups / 1e9 + 1e-9);
        assert!(m.gcups(0, 100) == 0.0);
    }
}
