//! Offline, API-compatible subset of
//! [`serde_json`](https://crates.io/crates/serde_json), vendored so the
//! workspace builds without a crates.io mirror.
//!
//! Renders the [`serde::Value`] tree produced by the sibling `serde` stub
//! as JSON text ([`to_string`] / [`to_string_pretty`]) and parses JSON
//! text back into a tree ([`parse_value`]) or a typed value
//! ([`from_str`] / [`from_value`] via `serde::Deserialize`).

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// Serialization or parse error. The tree writer is total (non-finite
/// floats degrade to `null` like upstream), so writing never constructs
/// one; parsing reports malformed JSON and shape mismatches through it.
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Serialize `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0)?;
    Ok(out)
}

/// Serialize `value` as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0)?;
    Ok(out)
}

/// Parse JSON text into a typed value through its
/// [`Deserialize`] impl — the upstream `serde_json::from_str` shape.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let v = parse_value(s)?;
    from_value(&v)
}

/// Rebuild a typed value from an already-parsed tree.
pub fn from_value<T: Deserialize>(v: &Value) -> Result<T, Error> {
    T::from_value(v).map_err(|e| Error { msg: e.to_string() })
}

/// Parse JSON text into a [`Value`] tree. Accepts exactly what the
/// writer half emits (and standard JSON generally); trailing
/// non-whitespace is an error.
pub fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

/// Maximum container nesting accepted by the parser (upstream
/// serde_json uses the same limit); deeper input returns `Err` instead
/// of recursing to a stack overflow.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error {
            msg: format!("{msg} at byte {}", self.pos),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected {word:?}")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.seq(),
            Some(b'{') => self.map(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn enter(&mut self) -> Result<(), Error> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.err("recursion limit exceeded"));
        }
        Ok(())
    }

    fn seq(&mut self) -> Result<Value, Error> {
        self.enter()?;
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn map(&mut self) -> Result<Value, Error> {
        self.enter()?;
        self.eat(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let c = self.unicode_escape()?;
                            out.push(c);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte slice is valid UTF-8; find the scalar's width
                    // from the leading byte).
                    let start = self.pos;
                    let first = self.bytes[start];
                    let width = match first {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let chunk = std::str::from_utf8(&self.bytes[start..start + width])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(chunk);
                    self.pos += width;
                }
            }
        }
    }

    fn unicode_escape(&mut self) -> Result<char, Error> {
        let hex4 = |p: &mut Self| -> Result<u32, Error> {
            let end = p.pos + 4;
            if end > p.bytes.len() {
                return Err(p.err("truncated \\u escape"));
            }
            let s = std::str::from_utf8(&p.bytes[p.pos..end])
                .map_err(|_| p.err("invalid \\u escape"))?;
            let n = u32::from_str_radix(s, 16).map_err(|_| p.err("invalid \\u escape"))?;
            p.pos = end;
            Ok(n)
        };
        let hi = hex4(self)?;
        // Surrogate pair: a second \uXXXX must follow.
        if (0xd800..0xdc00).contains(&hi) {
            if self.bytes[self.pos..].starts_with(b"\\u") {
                self.pos += 2;
                let lo = hex4(self)?;
                if (0xdc00..0xe000).contains(&lo) {
                    let c = 0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00);
                    return char::from_u32(c).ok_or_else(|| self.err("invalid surrogate pair"));
                }
            }
            return Err(self.err("lone high surrogate"));
        }
        char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| self.err("invalid number"))
    }
}

fn write_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
}

fn write_value(
    out: &mut String,
    v: &Value,
    indent: Option<usize>,
    depth: usize,
) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            // Match serde_json's `Value` behaviour: NaN and infinities
            // become `null`, finite floats always carry a decimal point
            // or exponent so they re-parse as floats.
            if !x.is_finite() {
                out.push_str("null");
                return Ok(());
            }
            let s = format!("{x}");
            out.push_str(&s);
            if !s.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1)?;
            }
            write_indent(out, indent, depth);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_indent(out, indent, depth + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1)?;
            }
            write_indent(out, indent, depth);
            out.push('}');
        }
    }
    Ok(())
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty() {
        let v = Value::Map(vec![
            ("a".into(), Value::U64(1)),
            ("b".into(), Value::Seq(vec![Value::Bool(true), Value::Null])),
        ]);
        struct Raw(Value);
        impl Serialize for Raw {
            fn to_value(&self) -> Value {
                self.0.clone()
            }
        }
        assert_eq!(
            to_string(&Raw(v.clone())).unwrap(),
            r#"{"a":1,"b":[true,null]}"#
        );
        let pretty = to_string_pretty(&Raw(v)).unwrap();
        assert!(pretty.contains("\n  \"a\": 1"));
    }

    #[test]
    fn floats_reparse_as_floats() {
        assert_eq!(to_string(&3.0f64).unwrap(), "3.0");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
    }

    #[test]
    fn strings_escape() {
        assert_eq!(to_string("a\"b\n").unwrap(), r#""a\"b\n""#);
    }

    #[test]
    fn parse_round_trips_writer_output() {
        let v = Value::Map(vec![
            ("int".into(), Value::U64(7)),
            ("neg".into(), Value::I64(-3)),
            ("float".into(), Value::F64(2.5)),
            ("whole_float".into(), Value::F64(30.0)),
            ("text".into(), Value::Str("a\"b\\c\nd\u{1f}é".into())),
            (
                "arr".into(),
                Value::Seq(vec![Value::Bool(false), Value::Null]),
            ),
            ("empty_arr".into(), Value::Seq(vec![])),
            ("empty_map".into(), Value::Map(vec![])),
        ]);
        struct Raw(Value);
        impl Serialize for Raw {
            fn to_value(&self) -> Value {
                self.0.clone()
            }
        }
        for text in [
            to_string(&Raw(v.clone())).unwrap(),
            to_string_pretty(&Raw(v.clone())).unwrap(),
        ] {
            let back = parse_value(&text).unwrap();
            // Whole floats re-parse as floats thanks to the forced ".0".
            assert_eq!(back, v, "round trip through {text}");
        }
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "tru",
            "\"unterminated",
            "1 2",
            "{'a':1}",
            "[1]]",
        ] {
            assert!(parse_value(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn parse_unicode_escapes() {
        assert_eq!(parse_value(r#""A🦀""#).unwrap(), Value::Str("A🦀".into()));
        assert_eq!(
            parse_value("\"\\ud83e\\udd80 \\u00e9\"").unwrap(),
            Value::Str("🦀 é".into()),
            "surrogate pair and BMP escapes decode"
        );
        assert!(parse_value(r#""\ud800""#).is_err(), "lone surrogate");
    }

    #[test]
    fn deep_nesting_errors_instead_of_overflowing() {
        // Within the limit: parses fine.
        let ok = format!("{}1{}", "[".repeat(100), "]".repeat(100));
        assert!(parse_value(&ok).is_ok());
        // Past the limit (and far past, where recursion would blow the
        // stack): a graceful Err.
        for depth in [200usize, 200_000] {
            let bad = "[".repeat(depth);
            let err = parse_value(&bad).unwrap_err();
            assert!(err.to_string().contains("recursion limit"), "{err}");
        }
    }

    #[test]
    fn typed_from_str() {
        let xs: Vec<f64> = from_str("[1, 2.5, -3]").unwrap();
        assert_eq!(xs, vec![1.0, 2.5, -3.0]);
        let pair: (u32, String) = from_str(r#"[4, "x"]"#).unwrap();
        assert_eq!(pair, (4, "x".to_string()));
        assert!(from_str::<Vec<u32>>("[1, -2]").is_err(), "range check");
        let opt: Option<bool> = from_str("null").unwrap();
        assert_eq!(opt, None);
    }
}
