//! Device memory: capacity accounting and the coalescing model.
//!
//! Two concerns live here:
//!
//! 1. **Capacity** — [`DeviceMemory`] tracks allocations against the HBM
//!    size. The paper's multi-GPU load balancer treats HBM as the
//!    limiting resource (§IV-C); `logan-core` sizes its batches with
//!    these errors.
//! 2. **Coalescing** — [`AccessPattern`] models how a warp's 32 lane
//!    accesses turn into 32-byte HBM sectors. Reading a sequence
//!    *backwards* makes each lane touch its own sector (paper Fig. 6);
//!    LOGAN's host-side reversal restores unit-stride access. The
//!    effective-traffic ratio between the two patterns is what the
//!    `reversal` ablation bench measures.

use serde::{Deserialize, Serialize};
use std::fmt;

/// HBM sector size in bytes (V100 L2 sector).
pub const SECTOR_BYTES: u64 = 32;

/// How a warp's lanes address memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AccessPattern {
    /// Consecutive lanes touch consecutive addresses: a full warp of
    /// 4-byte words needs 128 bytes = 4 sectors.
    Coalesced,
    /// Lanes stride apart (e.g. reading a sequence in reverse while the
    /// partner advances forward): every element drags in its own sector.
    Strided,
}

impl AccessPattern {
    /// Effective HBM traffic for `bytes` of payload accessed with this
    /// pattern, assuming 1-byte-per-lane granularity for sequence chars
    /// and 4-byte words for scores (the worst case is per-element
    /// sectors either way).
    pub fn effective_bytes(self, bytes: u64, element_size: u64) -> u64 {
        assert!(element_size > 0, "element size must be positive");
        match self {
            AccessPattern::Coalesced => {
                // Round up to whole sectors.
                bytes.div_ceil(SECTOR_BYTES) * SECTOR_BYTES
            }
            AccessPattern::Strided => {
                // One sector per element.
                (bytes / element_size).max(1) * SECTOR_BYTES
            }
        }
    }

    /// Number of 32-byte transactions for the payload.
    pub fn transactions(self, bytes: u64, element_size: u64) -> u64 {
        self.effective_bytes(bytes, element_size) / SECTOR_BYTES
    }
}

/// Error returned when a device allocation exceeds capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutOfMemory {
    /// Bytes requested.
    pub requested: u64,
    /// Bytes free at the time of the request.
    pub free: u64,
}

impl fmt::Display for OutOfMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "device out of memory: requested {} bytes, {} free",
            self.requested, self.free
        )
    }
}

impl std::error::Error for OutOfMemory {}

/// Bump-style capacity tracker for a device's HBM.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DeviceMemory {
    capacity: u64,
    used: u64,
    peak: u64,
}

impl DeviceMemory {
    /// A tracker for `capacity` bytes.
    pub fn new(capacity: u64) -> DeviceMemory {
        DeviceMemory {
            capacity,
            used: 0,
            peak: 0,
        }
    }

    /// Reserve `bytes`; fails when capacity would be exceeded.
    pub fn alloc(&mut self, bytes: u64) -> Result<(), OutOfMemory> {
        let free = self.capacity - self.used;
        if bytes > free {
            return Err(OutOfMemory {
                requested: bytes,
                free,
            });
        }
        self.used += bytes;
        self.peak = self.peak.max(self.used);
        Ok(())
    }

    /// Release `bytes`. Panics on over-free (a logic error in the host
    /// code, never a data condition).
    pub fn free(&mut self, bytes: u64) {
        assert!(bytes <= self.used, "over-free: {} > {}", bytes, self.used);
        self.used -= bytes;
    }

    /// Bytes currently allocated.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// High-water mark.
    pub fn peak(&self) -> u64 {
        self.peak
    }

    /// Bytes free.
    pub fn free_bytes(&self) -> u64 {
        self.capacity - self.used
    }

    /// Total capacity.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coalesced_rounds_to_sectors() {
        let p = AccessPattern::Coalesced;
        assert_eq!(p.effective_bytes(128, 4), 128);
        assert_eq!(p.effective_bytes(1, 1), 32);
        assert_eq!(p.effective_bytes(33, 1), 64);
        assert_eq!(p.transactions(128, 4), 4);
    }

    #[test]
    fn strided_pays_sector_per_element() {
        let p = AccessPattern::Strided;
        // 32 4-byte words: coalesced = 4 sectors, strided = 32 sectors.
        assert_eq!(p.effective_bytes(128, 4), 32 * 32);
        assert_eq!(p.transactions(128, 4), 32);
        // The 8x ratio is the Fig. 6 reversal penalty for words.
        assert_eq!(
            p.effective_bytes(128, 4) / AccessPattern::Coalesced.effective_bytes(128, 4),
            8
        );
    }

    #[test]
    fn strided_bytes_for_chars() {
        // 32 single-byte chars: coalesced = 1 sector, strided = 32.
        assert_eq!(AccessPattern::Coalesced.effective_bytes(32, 1), 32);
        assert_eq!(AccessPattern::Strided.effective_bytes(32, 1), 1024);
    }

    #[test]
    fn memory_alloc_free_cycle() {
        let mut m = DeviceMemory::new(1000);
        m.alloc(400).unwrap();
        m.alloc(600).unwrap();
        assert_eq!(m.free_bytes(), 0);
        let err = m.alloc(1).unwrap_err();
        assert_eq!(err.requested, 1);
        assert_eq!(err.free, 0);
        m.free(500);
        assert_eq!(m.used(), 500);
        assert_eq!(m.peak(), 1000);
        m.alloc(100).unwrap();
    }

    #[test]
    #[should_panic(expected = "over-free")]
    fn over_free_panics() {
        let mut m = DeviceMemory::new(10);
        m.free(1);
    }

    #[test]
    fn oom_error_message() {
        let e = OutOfMemory {
            requested: 10,
            free: 5,
        };
        assert!(e.to_string().contains("requested 10"));
    }
}
