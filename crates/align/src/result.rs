//! Result types shared by all aligners.

use serde::{Deserialize, Serialize};

/// Outcome of a semi-global *extension*: the best-scoring alignment of a
/// prefix of the query against a prefix of the target, as produced by
/// X-drop (`extendSeedL`) and ksw2-style extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExtensionResult {
    /// Best alignment score found.
    pub score: i32,
    /// Query prefix length (`i`) at the best cell.
    pub query_end: usize,
    /// Target prefix length (`j`) at the best cell.
    pub target_end: usize,
    /// DP cells actually computed (the work measure behind GCUPS).
    pub cells: u64,
    /// Anti-diagonal (or row) iterations executed.
    pub iterations: u64,
    /// Widest anti-diagonal (or band) encountered; proportional to the
    /// parallelism available to the GPU kernel.
    pub max_width: usize,
    /// True if the aligner stopped because the drop condition fired
    /// (rather than reaching the end of a sequence).
    pub dropped: bool,
}

impl ExtensionResult {
    /// A zero extension (empty query or target).
    pub fn zero() -> ExtensionResult {
        ExtensionResult {
            score: 0,
            query_end: 0,
            target_end: 0,
            cells: 0,
            iterations: 0,
            max_width: 0,
            dropped: false,
        }
    }
}

/// Outcome of a full-matrix alignment (NW / SW / banded SW).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AlignmentResult {
    /// Optimal score.
    pub score: i32,
    /// End position in the query (1-based prefix length; for NW this is
    /// always the query length).
    pub query_end: usize,
    /// End position in the target.
    pub target_end: usize,
    /// DP cells computed.
    pub cells: u64,
}

/// Outcome of a seed-and-extend alignment: the two extensions plus the
/// seed contribution (paper Fig. 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SeedExtendResult {
    /// Total score: `left.score + seed_len * match + right.score`.
    pub score: i32,
    /// The left (reversed-prefix) extension.
    pub left: ExtensionResult,
    /// The right extension.
    pub right: ExtensionResult,
    /// Start of the alignment in the query (original coordinates).
    pub query_start: usize,
    /// End (exclusive) of the alignment in the query.
    pub query_end: usize,
    /// Start of the alignment in the target.
    pub target_start: usize,
    /// End (exclusive) of the alignment in the target.
    pub target_end: usize,
}

impl SeedExtendResult {
    /// Total DP cells computed across both extensions.
    pub fn cells(&self) -> u64 {
        self.left.cells + self.right.cells
    }

    /// Length of the aligned span on the query.
    pub fn query_span(&self) -> usize {
        self.query_end - self.query_start
    }

    /// Length of the aligned span on the target.
    pub fn target_span(&self) -> usize {
        self.target_end - self.target_start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_extension_is_neutral() {
        let z = ExtensionResult::zero();
        assert_eq!(z.score, 0);
        assert_eq!(z.cells, 0);
        assert!(!z.dropped);
    }

    #[test]
    fn seed_extend_spans() {
        let left = ExtensionResult {
            score: 5,
            query_end: 10,
            target_end: 12,
            cells: 100,
            iterations: 20,
            max_width: 7,
            dropped: true,
        };
        let right = ExtensionResult {
            score: 8,
            query_end: 20,
            target_end: 18,
            cells: 150,
            iterations: 30,
            max_width: 9,
            dropped: false,
        };
        let r = SeedExtendResult {
            score: 5 + 8 + 17,
            left,
            right,
            query_start: 40,
            query_end: 87,
            target_start: 38,
            target_end: 85,
        };
        assert_eq!(r.cells(), 250);
        assert_eq!(r.query_span(), 47);
        assert_eq!(r.target_span(), 47);
    }
}
