//! Protein homology search with X-drop — the paper's §VIII future-work
//! item, implemented.
//!
//! ```sh
//! cargo run --release --example protein_homology
//! ```
//!
//! Builds a toy protein "database", corrupts one entry into a distant
//! homolog of a query, and shows X-drop under BLOSUM62 pulling the
//! homolog out while terminating almost immediately on every
//! non-homolog — the property that makes X-drop effective for homology
//! search (it is BLAST's extension heuristic, after all).

use logan::align::protein::{xdrop_extend_generic, SubstMatrix, AMINO_ACIDS};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_protein<R: Rng>(n: usize, rng: &mut R) -> Vec<u8> {
    (0..n)
        .map(|_| AMINO_ACIDS[rng.gen_range(0..20usize)])
        .collect()
}

fn main() {
    let mut rng = StdRng::seed_from_u64(8);
    let matrix = SubstMatrix::blosum62(-6);
    let query = random_protein(400, &mut rng);

    // Database: 19 unrelated proteins + 1 homolog (25% substitutions).
    let mut database: Vec<(String, Vec<u8>)> = (0..19)
        .map(|i| (format!("random_{i:02}"), random_protein(400, &mut rng)))
        .collect();
    let mut homolog = query.clone();
    for residue in homolog.iter_mut() {
        if rng.gen_bool(0.25) {
            *residue = AMINO_ACIDS[rng.gen_range(0..20usize)];
        }
    }
    database.push(("homolog".to_string(), homolog));

    println!(
        "query: 400 aa; database: {} entries; X = 60, BLOSUM62\n",
        database.len()
    );
    println!(
        "{:>12} {:>8} {:>10} {:>9}",
        "entry", "score", "DP cells", "dropped"
    );
    let mut results: Vec<(String, i32, u64, bool)> = database
        .iter()
        .map(|(name, seq)| {
            let r = xdrop_extend_generic(&query, seq, &matrix, 60);
            (name.clone(), r.score, r.cells, r.dropped)
        })
        .collect();
    results.sort_by_key(|r| std::cmp::Reverse(r.1));
    for (name, score, cells, dropped) in &results {
        println!("{name:>12} {score:>8} {cells:>10} {dropped:>9}");
    }

    let (top, runner_up) = (&results[0], &results[1]);
    assert_eq!(top.0, "homolog", "the homolog must rank first");
    println!(
        "\nhomolog found: score {} vs best non-homolog {} ({}x); \
         non-homologs explored {:.1}% of the homolog's DP cells on average",
        top.1,
        runner_up.1,
        top.1 / runner_up.1.max(1),
        100.0 * results[1..].iter().map(|r| r.2).sum::<u64>() as f64
            / (results.len() - 1) as f64
            / top.2 as f64
    );
}
