//! Device specifications.

use serde::{Deserialize, Serialize};

/// Static description of a simulated GPU.
///
/// The default, [`DeviceSpec::v100`], mirrors the NVIDIA Tesla V100
/// (16 GB HBM2) of the paper's testbed and of its §VII roofline:
/// 80 SMs × 4 warp schedulers × 1 instruction/cycle × 1.53 GHz
/// = 489.6 warp GIPS peak issue rate; each scheduler's processing block
/// has 16 INT32 cores, so integer code sustains half the issue rate.
///
/// Note: the paper quotes 220.8 integer warp GIPS; the formula it states
/// (`16/32 × 489.6`) evaluates to 244.8. We implement the formula, not
/// the misprint, and say so in EXPERIMENTS.md.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceSpec {
    /// Marketing name, for reports.
    pub name: String,
    /// Streaming multiprocessors.
    pub sm_count: usize,
    /// Warp schedulers (processing blocks) per SM.
    pub warp_schedulers_per_sm: usize,
    /// Threads per warp.
    pub warp_size: usize,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// INT32 cores per warp scheduler.
    pub int32_cores_per_scheduler: usize,
    /// Shared memory per SM, bytes.
    pub shared_mem_per_sm: usize,
    /// Maximum shared memory a single block may reserve, bytes.
    pub shared_mem_per_block_max: usize,
    /// Maximum threads per block.
    pub max_threads_per_block: usize,
    /// Maximum resident blocks per SM.
    pub max_blocks_per_sm: usize,
    /// Maximum resident threads per SM.
    pub max_threads_per_sm: usize,
    /// HBM capacity in bytes.
    pub hbm_bytes: u64,
    /// HBM bandwidth, GB/s.
    pub hbm_bw_gbps: f64,
    /// L2 cache size, bytes. Working sets that fit in L2 across all
    /// resident blocks do not pay HBM streaming traffic.
    pub l2_bytes: u64,
    /// Host link (PCIe/NVLink) bandwidth, GB/s.
    pub link_bw_gbps: f64,
    /// Fixed kernel launch overhead, microseconds.
    pub launch_overhead_us: f64,
    /// Warps an SM must hold to hide issue latency (occupancy knee).
    pub warps_to_saturate_sm: usize,
}

impl DeviceSpec {
    /// The paper's GPU: NVIDIA Tesla V100 SXM2 16 GB.
    pub fn v100() -> DeviceSpec {
        DeviceSpec {
            name: "Tesla V100-SXM2-16GB (simulated)".to_string(),
            sm_count: 80,
            warp_schedulers_per_sm: 4,
            warp_size: 32,
            clock_ghz: 1.53,
            int32_cores_per_scheduler: 16,
            shared_mem_per_sm: 96 * 1024,
            shared_mem_per_block_max: 64 * 1024,
            max_threads_per_block: 1024,
            max_blocks_per_sm: 32,
            max_threads_per_sm: 2048,
            hbm_bytes: 16 * 1024 * 1024 * 1024,
            hbm_bw_gbps: 900.0,
            l2_bytes: 6 * 1024 * 1024,
            link_bw_gbps: 16.0,
            launch_overhead_us: 5.0,
            warps_to_saturate_sm: 16,
        }
    }

    /// A deliberately tiny device for tests (2 SMs): occupancy and wave
    /// effects show up at small block counts.
    pub fn tiny() -> DeviceSpec {
        DeviceSpec {
            name: "TinySim-2SM".to_string(),
            sm_count: 2,
            warp_schedulers_per_sm: 2,
            warp_size: 32,
            clock_ghz: 1.0,
            int32_cores_per_scheduler: 16,
            shared_mem_per_sm: 8 * 1024,
            shared_mem_per_block_max: 4 * 1024,
            max_threads_per_block: 256,
            max_blocks_per_sm: 4,
            max_threads_per_sm: 512,
            hbm_bytes: 64 * 1024 * 1024,
            hbm_bw_gbps: 50.0,
            l2_bytes: 256 * 1024,
            link_bw_gbps: 8.0,
            launch_overhead_us: 5.0,
            warps_to_saturate_sm: 4,
        }
    }

    /// Peak warp-instruction issue rate, GIPS (the paper's 489.6 for the
    /// V100).
    pub fn warp_gips(&self) -> f64 {
        self.sm_count as f64 * self.warp_schedulers_per_sm as f64 * self.clock_ghz
    }

    /// Sustained integer warp GIPS: INT32 cores cover only
    /// `int32_cores_per_scheduler / warp_size` of a warp per cycle.
    pub fn int_warp_gips(&self) -> f64 {
        self.warp_gips() * self.int32_cores_per_scheduler as f64 / self.warp_size as f64
    }

    /// Integer warp GIPS available to a single SM.
    pub fn sm_int_warp_gips(&self) -> f64 {
        self.int_warp_gips() / self.sm_count as f64
    }

    /// Total INT32 cores on the device (`MAXR` in the paper's Eq. 1).
    pub fn int32_cores_total(&self) -> usize {
        self.sm_count * self.warp_schedulers_per_sm * self.int32_cores_per_scheduler
    }

    /// How many blocks of `threads` threads and `shared` shared bytes can
    /// be resident on one SM at once.
    pub fn blocks_resident_per_sm(&self, threads: usize, shared: usize) -> usize {
        assert!(threads >= 1, "a block needs at least one thread");
        let by_blocks = self.max_blocks_per_sm;
        let by_threads = self.max_threads_per_sm / threads.min(self.max_threads_per_block);
        let by_shared = self
            .shared_mem_per_sm
            .checked_div(shared)
            .unwrap_or(usize::MAX);
        by_blocks.min(by_threads).min(by_shared)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v100_matches_paper_figures() {
        let v = DeviceSpec::v100();
        assert!((v.warp_gips() - 489.6).abs() < 1e-9);
        // The honest evaluation of the paper's own formula.
        assert!((v.int_warp_gips() - 244.8).abs() < 1e-9);
        assert_eq!(v.int32_cores_total(), 5120);
        assert_eq!(v.hbm_bytes, 17_179_869_184);
    }

    #[test]
    fn residency_limited_by_threads() {
        let v = DeviceSpec::v100();
        // 1024-thread blocks: only 2 fit (2048-thread SM budget).
        assert_eq!(v.blocks_resident_per_sm(1024, 0), 2);
        // 64-thread blocks: the 32-block cap binds.
        assert_eq!(v.blocks_resident_per_sm(64, 0), 32);
    }

    #[test]
    fn residency_limited_by_shared_memory() {
        let v = DeviceSpec::v100();
        // A block reserving 48 KB leaves room for exactly two on a 96 KB
        // SM — the §IV-B argument for keeping anti-diagonals in HBM.
        assert_eq!(v.blocks_resident_per_sm(128, 48 * 1024), 2);
        assert_eq!(v.blocks_resident_per_sm(128, 64 * 1024), 1);
    }

    #[test]
    fn sm_rate_is_share_of_total() {
        let v = DeviceSpec::v100();
        assert!((v.sm_int_warp_gips() * v.sm_count as f64 - v.int_warp_gips()).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_thread_block_rejected() {
        let _ = DeviceSpec::v100().blocks_resident_per_sm(0, 0);
    }
}
