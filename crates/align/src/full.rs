//! Exact quadratic aligners: Needleman–Wunsch (global), Smith–Waterman
//! (local) and the semi-global extension oracle.
//!
//! These are the algorithms the related-work GPU efforts accelerate
//! (paper §II). Here they serve three roles: oracle for property tests
//! (X-drop with unbounded X must equal [`extension_oracle`]), the
//! CUDASW++-style workload for Fig. 12, and a clear statement of the
//! recurrences shared by every aligner in the workspace.

use crate::result::AlignmentResult;
use crate::NEG_INF;
use logan_seq::{Scoring, Seq};

/// Global alignment (Needleman–Wunsch, linear gaps): both sequences are
/// consumed end to end.
pub fn needleman_wunsch(query: &Seq, target: &Seq, scoring: Scoring) -> AlignmentResult {
    let m = query.len();
    let n = target.len();
    let q = query.as_slice();
    let t = target.as_slice();

    // One rolling row: prev[j] = S(i-1, j), cur[j] = S(i, j).
    let mut prev: Vec<i32> = (0..=n as i32).map(|j| j * scoring.gap).collect();
    let mut cur = vec![0i32; n + 1];
    for i in 1..=m {
        cur[0] = i as i32 * scoring.gap;
        for j in 1..=n {
            let diag = prev[j - 1] + scoring.substitution(q[i - 1] == t[j - 1]);
            let up = prev[j] + scoring.gap;
            let left = cur[j - 1] + scoring.gap;
            cur[j] = diag.max(up).max(left);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    AlignmentResult {
        score: prev[n],
        query_end: m,
        target_end: n,
        cells: (m as u64) * (n as u64),
    }
}

/// Local alignment (Smith–Waterman, linear gaps): the best-scoring pair
/// of substrings. Scores are floored at zero.
pub fn smith_waterman(query: &Seq, target: &Seq, scoring: Scoring) -> AlignmentResult {
    let m = query.len();
    let n = target.len();
    let q = query.as_slice();
    let t = target.as_slice();

    let mut prev = vec![0i32; n + 1];
    let mut cur = vec![0i32; n + 1];
    let mut best = 0i32;
    let mut best_pos = (0usize, 0usize);
    for i in 1..=m {
        cur[0] = 0;
        for j in 1..=n {
            let diag = prev[j - 1] + scoring.substitution(q[i - 1] == t[j - 1]);
            let up = prev[j] + scoring.gap;
            let left = cur[j - 1] + scoring.gap;
            let v = diag.max(up).max(left).max(0);
            cur[j] = v;
            if v > best {
                best = v;
                best_pos = (i, j);
            }
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    AlignmentResult {
        score: best,
        query_end: best_pos.0,
        target_end: best_pos.1,
        cells: (m as u64) * (n as u64),
    }
}

/// Semi-global extension oracle: the maximum of `S(i, j)` over the whole
/// matrix, where `S` is the prefix-alignment score with linear gaps and
/// `S(0,0) = 0` — i.e. exactly what X-drop computes when `X` is large
/// enough that nothing is ever pruned.
///
/// Tie-break matches [`crate::xdrop::xdrop_extend`]: earliest
/// anti-diagonal (`i + j`), then smallest `i` — but note a subtlety: the
/// X-drop routine only updates its best when an anti-diagonal maximum
/// *strictly exceeds* the running best, so the oracle mirrors that by
/// scanning anti-diagonals in order.
pub fn extension_oracle(query: &Seq, target: &Seq, scoring: Scoring) -> AlignmentResult {
    let m = query.len();
    let n = target.len();
    let q = query.as_slice();
    let t = target.as_slice();

    // Full matrix, no pruning; kept simple (tests only run it on small
    // inputs).
    let mut s = vec![vec![NEG_INF; n + 1]; m + 1];
    s[0][0] = 0;
    for j in 1..=n {
        s[0][j] = s[0][j - 1] + scoring.gap;
    }
    for i in 1..=m {
        s[i][0] = s[i - 1][0] + scoring.gap;
        for j in 1..=n {
            let diag = s[i - 1][j - 1] + scoring.substitution(q[i - 1] == t[j - 1]);
            let up = s[i - 1][j] + scoring.gap;
            let left = s[i][j - 1] + scoring.gap;
            s[i][j] = diag.max(up).max(left);
        }
    }

    let mut best = 0i32;
    let mut best_pos = (0usize, 0usize);
    for d in 1..=(m + n) {
        let lo = d.saturating_sub(n);
        let hi = d.min(m);
        let mut row_max = NEG_INF;
        let mut row_arg = (0usize, 0usize);
        for i in lo..=hi {
            let j = d - i;
            if s[i][j] > row_max {
                row_max = s[i][j];
                row_arg = (i, j);
            }
        }
        if row_max > best {
            best = row_max;
            best_pos = row_arg;
        }
    }
    AlignmentResult {
        score: best,
        query_end: best_pos.0,
        target_end: best_pos.1,
        cells: (m as u64) * (n as u64),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use logan_seq::readsim::random_seq;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn seq(s: &str) -> Seq {
        Seq::from_str_strict(s).unwrap()
    }

    #[test]
    fn nw_identical() {
        let s = seq("ACGTACGT");
        let r = needleman_wunsch(&s, &s, Scoring::default());
        assert_eq!(r.score, 8);
        assert_eq!(r.cells, 64);
    }

    #[test]
    fn nw_empty_query_costs_gaps() {
        let r = needleman_wunsch(&Seq::new(), &seq("ACGT"), Scoring::default());
        assert_eq!(r.score, -4);
    }

    #[test]
    fn nw_known_value() {
        // ACGT vs AGT: one deletion. score = 3 matches - 1 gap = 2.
        let r = needleman_wunsch(&seq("ACGT"), &seq("AGT"), Scoring::default());
        assert_eq!(r.score, 2);
    }

    #[test]
    fn sw_finds_embedded_match() {
        // A perfect 6-mer embedded in noise on both sides.
        let q = seq("TTTTTTACGGCATTTTTT");
        let t = seq("GGGGGGACGGCAGGGGGG");
        let r = smith_waterman(&q, &t, Scoring::default());
        assert_eq!(r.score, 6);
    }

    #[test]
    fn sw_never_negative() {
        let q = seq("AAAA");
        let t = seq("TTTT");
        let r = smith_waterman(&q, &t, Scoring::default());
        assert_eq!(r.score, 0);
    }

    #[test]
    fn sw_at_least_nw_on_any_input() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..20 {
            let a = random_seq(40, &mut rng);
            let b = random_seq(40, &mut rng);
            let sw = smith_waterman(&a, &b, Scoring::default());
            let nw = needleman_wunsch(&a, &b, Scoring::default());
            assert!(sw.score >= nw.score);
        }
    }

    #[test]
    fn oracle_bounded_by_local_optimum() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..20 {
            let a = random_seq(30, &mut rng);
            let b = random_seq(35, &mut rng);
            let ext = extension_oracle(&a, &b, Scoring::default());
            let sw = smith_waterman(&a, &b, Scoring::default());
            // Extension is a local alignment anchored at (0,0): never
            // better than the unanchored optimum, never below zero.
            assert!(ext.score <= sw.score);
            assert!(ext.score >= 0);
        }
    }

    #[test]
    fn oracle_identical_is_perfect() {
        let s = seq("ACGTTGCAACGT");
        let r = extension_oracle(&s, &s, Scoring::default());
        assert_eq!(r.score, s.len() as i32);
        assert_eq!((r.query_end, r.target_end), (s.len(), s.len()));
    }
}
