//! Quickstart: align one pair of noisy long reads with LOGAN.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Generates a read pair (two ~15%-divergent copies of a 5 kb template
//! with a planted exact seed), extends left and right from the seed on a
//! simulated V100, and cross-checks the result against the scalar
//! X-drop reference.

use logan::prelude::*;

fn main() {
    // A reproducible pair: 5 kb template, 15% pairwise divergence.
    let set = PairSet::generate_with_lengths(1, 0.15, 5000, 5000, 7);
    let pair = &set.pairs[0];
    println!(
        "query {} bp / target {} bp, seed at q={} t={} (k={})",
        pair.query.len(),
        pair.target.len(),
        pair.seed.qpos,
        pair.seed.tpos,
        pair.seed.len
    );

    // LOGAN on one simulated V100, X = 100 (the paper's headline X).
    let executor = LoganExecutor::new(DeviceSpec::v100(), LoganConfig::with_x(100));
    let (results, report) = executor.align_pairs(&set.pairs);
    let r = &results[0];

    println!(
        "LOGAN: score {}, span q[{}..{}] x t[{}..{}], {} DP cells",
        r.score,
        r.query_start,
        r.query_end,
        r.target_start,
        r.target_end,
        r.cells()
    );
    println!(
        "simulated device time: {:.3} ms ({} kernel launches)",
        report.sim_time_s * 1e3,
        report.launches
    );

    // The GPU pipeline is bit-equivalent to the scalar reference.
    let reference = seed_extend(
        &pair.query,
        &pair.target,
        pair.seed,
        &XDropExtender::new(Scoring::default(), 100),
    );
    assert_eq!(*r, reference);
    println!("matches the scalar SeqAn-style reference: ok");
}
