//! Candidate overlap detection: the sparse `A·Aᵀ` product.
//!
//! BELLA computes `A·Aᵀ` with a multi-threaded hash-accumulator SpGEMM;
//! each nonzero `(i, j)` of the product is a pair of reads sharing at
//! least one reliable k-mer, annotated with up to two *witnesses* — the
//! shared k-mer's positions in both reads — which is exactly what its
//! binning stage consumes. We implement the outer-product formulation:
//! every column (k-mer) contributes all pairs of its postings. The
//! reliable upper bound caps posting-list lengths, which is what keeps
//! this quadratic-in-column-degree step linear in practice (and is why
//! BELLA prunes repeats *before* the multiply).

use crate::fxhash::FxHashMap;
use crate::matrix::KmerMatrix;
use serde::{Deserialize, Serialize};

/// Maximum witnesses retained per candidate pair (BELLA keeps 2).
pub const MAX_WITNESSES: usize = 2;

/// A candidate read pair with shared-k-mer evidence.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CandidatePair {
    /// Lower read id.
    pub r1: u32,
    /// Higher read id.
    pub r2: u32,
    /// Up to [`MAX_WITNESSES`] shared k-mer positions `(pos_in_r1,
    /// pos_in_r2)`, in discovery order.
    pub witnesses: Vec<(u32, u32)>,
    /// Total shared reliable k-mers (may exceed `witnesses.len()`).
    pub shared: u32,
}

/// Compute all candidate pairs from the k-mer matrix.
///
/// Deterministic: pairs are emitted sorted by `(r1, r2)` and witnesses
/// in column-discovery order.
pub fn spgemm_candidates(matrix: &KmerMatrix) -> Vec<CandidatePair> {
    let postings = matrix.postings();
    let mut acc: FxHashMap<(u32, u32), CandidatePair> = FxHashMap::default();
    for entries in &postings {
        for (a, &(r1, p1)) in entries.iter().enumerate() {
            for &(r2, p2) in &entries[a + 1..] {
                if r1 == r2 {
                    continue;
                }
                let (key, w) = if r1 < r2 {
                    ((r1, r2), (p1, p2))
                } else {
                    ((r2, r1), (p2, p1))
                };
                let entry = acc.entry(key).or_insert_with(|| CandidatePair {
                    r1: key.0,
                    r2: key.1,
                    witnesses: Vec::with_capacity(MAX_WITNESSES),
                    shared: 0,
                });
                entry.shared += 1;
                if entry.witnesses.len() < MAX_WITNESSES {
                    entry.witnesses.push(w);
                }
            }
        }
    }
    let mut out: Vec<CandidatePair> = acc.into_values().collect();
    out.sort_unstable_by_key(|c| (c.r1, c.r2));
    out
}

/// Tiled SpGEMM: the same product as [`spgemm_candidates`], emitted as
/// an iterator of row-tile blocks instead of one materialized list.
///
/// Tile `t` holds every candidate pair whose *lower* read id falls in
/// `[t·tile_rows, (t+1)·tile_rows)`, sorted by `(r1, r2)` — so the
/// concatenation of all tiles is *bit-identical* (pairs, witnesses,
/// shared counts, order) to the monolithic output, while the live state
/// is one tile's accumulator instead of a hash map over every candidate
/// in the genome. This is the candidate-generation half of the
/// streaming pipeline's producer/consumer stage.
///
/// Per-pair equivalence argument: the monolithic kernel walks postings
/// column-by-column in column-id order, so a pair's witnesses are its
/// first [`MAX_WITNESSES`] common columns by column id and `shared`
/// counts all of them. The tiled kernel walks each row's columns in
/// ascending column-id order and scans each column's postings past the
/// anchor read, visiting exactly the same (pair, column) incidences in
/// the same per-pair column order.
pub fn spgemm_tiles(matrix: &KmerMatrix, tile_rows: usize) -> SpgemmTiles<'_> {
    SpgemmTiles {
        postings: matrix.postings(),
        matrix,
        next_row: 0,
        tile_rows: tile_rows.max(1),
    }
}

/// Iterator of candidate blocks; see [`spgemm_tiles`].
pub struct SpgemmTiles<'a> {
    /// Column-major postings, shared by all tiles.
    postings: Vec<Vec<(u32, u32)>>,
    matrix: &'a KmerMatrix,
    next_row: usize,
    tile_rows: usize,
}

impl SpgemmTiles<'_> {
    /// Candidates of one anchor row `i`: every read `j > i` sharing a
    /// reliable column, witnesses in column-id order.
    fn row_candidates(
        &self,
        i: usize,
        row_cols: &mut Vec<(u32, u32)>,
        out: &mut Vec<CandidatePair>,
    ) {
        row_cols.clear();
        row_cols.extend(self.matrix.row(i));
        // Row entries are in first-encounter order within the read;
        // witness order must follow global column ids.
        row_cols.sort_unstable();
        let mut acc: FxHashMap<u32, CandidatePair> = FxHashMap::default();
        for &(col, p1) in row_cols.iter() {
            for &(j, p2) in &self.postings[col as usize] {
                if (j as usize) <= i {
                    continue;
                }
                let entry = acc.entry(j).or_insert_with(|| CandidatePair {
                    r1: i as u32,
                    r2: j,
                    witnesses: Vec::with_capacity(MAX_WITNESSES),
                    shared: 0,
                });
                entry.shared += 1;
                if entry.witnesses.len() < MAX_WITNESSES {
                    entry.witnesses.push((p1, p2));
                }
            }
        }
        let at = out.len();
        out.extend(acc.into_values());
        out[at..].sort_unstable_by_key(|c| c.r2);
    }
}

impl Iterator for SpgemmTiles<'_> {
    /// One tile's candidates, sorted by `(r1, r2)`; may be empty for
    /// tiles whose rows share nothing.
    type Item = Vec<CandidatePair>;

    fn next(&mut self) -> Option<Vec<CandidatePair>> {
        if self.next_row >= self.matrix.n_reads {
            return None;
        }
        let lo = self.next_row;
        let hi = (lo + self.tile_rows).min(self.matrix.n_reads);
        self.next_row = hi;
        let mut out = Vec::new();
        let mut row_cols: Vec<(u32, u32)> = Vec::new();
        for i in lo..hi {
            self.row_candidates(i, &mut row_cols, &mut out);
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fxhash::FxHashSet;
    use crate::kmer_count::count_kmers;
    use logan_seq::Seq;

    fn seq(s: &str) -> Seq {
        Seq::from_str_strict(s).unwrap()
    }

    fn matrix_of(reads: &[Seq], k: usize) -> KmerMatrix {
        let rel: FxHashSet<u64> = count_kmers(reads, k).keys().copied().collect();
        KmerMatrix::build(reads, k, &rel)
    }

    #[test]
    fn overlapping_reads_become_candidates() {
        let genome = seq("ACGTTGCAACGGTTACGATCGATCGGTAC");
        let r1 = genome.subseq(0, 20);
        let r2 = genome.subseq(8, 29);
        let r3 = seq("TTTTTTTTTTTTTTTTT"); // unrelated
        let m = matrix_of(&[r1, r2, r3], 8);
        let cands = spgemm_candidates(&m);
        assert_eq!(cands.len(), 1);
        let c = &cands[0];
        assert_eq!((c.r1, c.r2), (0, 1));
        assert!(c.shared >= 1);
        assert!(!c.witnesses.is_empty());
    }

    #[test]
    fn witness_positions_are_consistent() {
        let genome = seq("ACGTTGCAACGGTTACGATCGATCGGTACCA");
        let r1 = genome.subseq(0, 24);
        let r2 = genome.subseq(6, 31);
        let m = matrix_of(&[r1.clone(), r2.clone()], 10);
        let cands = spgemm_candidates(&m);
        assert_eq!(cands.len(), 1);
        for &(p1, p2) in &cands[0].witnesses {
            // The witnessed k-mers must actually match.
            let w1 = r1.subseq(p1 as usize, p1 as usize + 10);
            let w2 = r2.subseq(p2 as usize, p2 as usize + 10);
            assert!(w1 == w2 || w1 == w2.reverse_complement());
        }
    }

    #[test]
    fn witnesses_capped_but_shared_counts_all() {
        let genome = seq("ACGTTGCAACGGTTACGATCGATCGGTACCAGGTTACGTACG");
        let r1 = genome.subseq(0, 40);
        let r2 = genome.subseq(2, 42);
        let m = matrix_of(&[r1, r2], 8);
        let cands = spgemm_candidates(&m);
        assert_eq!(cands.len(), 1);
        assert!(cands[0].shared as usize > MAX_WITNESSES);
        assert_eq!(cands[0].witnesses.len(), MAX_WITNESSES);
    }

    #[test]
    fn ordering_is_deterministic_and_normalized() {
        let genome = seq("ACGTTGCAACGGTTACGATCGATCGGTACCAGGTT");
        let reads: Vec<Seq> = (0..4).map(|i| genome.subseq(i * 3, i * 3 + 20)).collect();
        let m = matrix_of(&reads, 8);
        let a = spgemm_candidates(&m);
        let b = spgemm_candidates(&m);
        assert_eq!(a, b);
        for c in &a {
            assert!(c.r1 < c.r2);
        }
        for w in a.windows(2) {
            assert!((w[0].r1, w[0].r2) < (w[1].r1, w[1].r2));
        }
    }

    #[test]
    fn tiles_concatenate_to_the_monolithic_product() {
        use logan_seq::readsim::ReadSimulator;
        // A realistic overlap graph: ~60 reads at depth 6 with errors,
        // plus the small handcrafted sets below for edge shapes.
        let sim = ReadSimulator {
            read_len: (300, 600),
            errors: logan_seq::ErrorProfile::pacbio(0.08),
            ..ReadSimulator::uniform(5_000, 6.0)
        };
        let rs = sim.generate(8);
        let seqs: Vec<Seq> = rs.reads.iter().map(|r| r.seq.clone()).collect();
        let m = matrix_of(&seqs, 13);
        let whole = spgemm_candidates(&m);
        assert!(!whole.is_empty(), "depth-6 set must produce candidates");
        for tile_rows in [1, 2, 7, 64, 10_000] {
            let tiled: Vec<CandidatePair> = spgemm_tiles(&m, tile_rows).flatten().collect();
            assert_eq!(
                tiled, whole,
                "tile_rows={tile_rows}: pairs, witnesses, shared counts \
                 and order must all match"
            );
        }
        // Tile count covers every row exactly once, empty tiles allowed.
        let n_tiles = spgemm_tiles(&m, 7).count();
        assert_eq!(n_tiles, m.n_reads.div_ceil(7));
        // tile_rows = 0 clamps to 1 instead of never advancing.
        assert_eq!(spgemm_tiles(&m, 0).count(), m.n_reads);
    }

    #[test]
    fn tiles_handle_degenerate_matrices() {
        // Empty matrix: no tiles at all.
        let m = matrix_of(&[], 8);
        assert_eq!(spgemm_tiles(&m, 4).count(), 0);
        // Unrelated reads: tiles exist but are empty.
        let reads = vec![seq("ACGTACGTACGTACG"), seq("TTTTTTTTTTTTTTT")];
        let m = matrix_of(&reads, 8);
        let tiles: Vec<Vec<CandidatePair>> = spgemm_tiles(&m, 1).collect();
        assert_eq!(tiles.len(), 2);
        assert!(tiles.iter().all(|t| t.is_empty()));
    }

    #[test]
    fn no_self_pairs() {
        // A read with an internal repeat must not pair with itself.
        let r = seq("ACGTACGTACGTACGTACGT");
        let m = matrix_of(&[r], 8);
        assert!(spgemm_candidates(&m).is_empty());
    }
}
