//! Deterministic shutdown and fault-injection suite for the serving
//! daemon, run under the `serve-equivalence` premerge step (ISSUE 6
//! satellite):
//!
//! * graceful shutdown answers every queued *and* in-flight request
//!   exactly once — drained, not dropped;
//! * a backend lane that panics retires itself (extending PR 5's
//!   panic-safe worker retirement) and fails only the requests whose
//!   pairs it was carrying — everything else completes;
//! * when *every* lane has retired, queued requests fail with an
//!   explicit error and later submissions are refused immediately —
//!   nothing ever hangs on a dead server.
//!
//! The fault injector is a poison-pair backend: any [`ReadPair`] whose
//! `template_len` equals [`POISON`] panics the lane that aligns it, so
//! tests decide *which* request dies while the lane race stays free.

use logan::prelude::*;
use logan::serve::{Reply, ReplyHandle, ServeConfig, ServeError, Server};
use std::sync::Arc;
use std::time::Duration;

/// Sentinel `template_len` that detonates [`PoisonBackend`].
const POISON: usize = 777_777;

/// A multi-lane CPU backend that panics on poison pairs and can dawdle
/// (to let queues build) — the deterministic fault injector.
struct PoisonBackend {
    inner: XDropCpuAligner,
    lanes: usize,
    delay: Duration,
}

impl PoisonBackend {
    fn new(lanes: usize, delay: Duration) -> PoisonBackend {
        PoisonBackend {
            inner: XDropCpuAligner::new(1, Scoring::default(), 30, Engine::Scalar),
            lanes,
            delay,
        }
    }
}

impl AlignBackend for PoisonBackend {
    fn name(&self) -> String {
        format!("poison:{}", self.lanes)
    }
    fn throughput_hint(&self) -> f64 {
        1.0
    }
    fn max_block(&self) -> usize {
        usize::MAX
    }
    fn lanes(&self) -> usize {
        self.lanes
    }
    fn align_block(&self, block: &[ReadPair]) -> (Vec<SeedExtendResult>, BackendReport) {
        if !self.delay.is_zero() {
            std::thread::sleep(self.delay);
        }
        for p in block {
            assert!(p.template_len != POISON, "poison pair aligned");
        }
        self.inner.align_block(block)
    }
}

fn good_requests(n: usize, pairs_each: usize, seed: u64) -> Vec<Vec<ReadPair>> {
    (0..n)
        .map(|i| PairSet::generate_with_lengths(pairs_each, 0.2, 120, 300, seed + i as u64).pairs)
        .collect()
}

fn poison_request(seed: u64) -> Vec<ReadPair> {
    let mut pairs = PairSet::generate_with_lengths(1, 0.2, 120, 300, seed).pairs;
    pairs[0].template_len = POISON;
    pairs
}

/// Graceful shutdown is a drain: every request admitted before
/// `shutdown()` — still queued or mid-batch — gets its one successful
/// reply, and the ledger accounts for each exactly once.
#[test]
fn shutdown_drains_queued_and_in_flight_exactly_once() {
    let backend = Arc::new(PoisonBackend::new(2, Duration::from_millis(2)));
    let server = Server::start(
        backend,
        ServeConfig {
            batch_pairs: 2, // many small batches: shutdown lands mid-queue
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let requests = good_requests(12, 3, 77);
    let handles: Vec<ReplyHandle> = requests
        .iter()
        .map(|pairs| server.submit(0, pairs.clone()))
        .collect();
    // Shut down while the queue is still full of unserved batches.
    let stats = server.shutdown();
    assert_eq!(stats.submitted, 12);
    assert_eq!(stats.completed, 12, "a drained request was dropped");
    assert_eq!(stats.failed + stats.rejected_shutdown, 0);
    for (h, pairs) in handles.into_iter().zip(&requests) {
        let resp = h.recv().expect("drained request must succeed");
        assert_eq!(resp.results.len(), pairs.len());
    }
    // Idempotent: a second shutdown returns the same final ledger.
    assert_eq!(server.shutdown(), stats);
}

/// Dropping the server without calling `shutdown()` still drains: the
/// `Drop` impl runs the same path, so abandoned handles resolve.
#[test]
fn dropping_the_server_still_drains() {
    let requests = good_requests(6, 2, 5);
    let handles: Vec<ReplyHandle> = {
        let backend = Arc::new(PoisonBackend::new(2, Duration::from_millis(1)));
        let server = Server::start(
            backend,
            ServeConfig {
                batch_pairs: 2,
                ..ServeConfig::default()
            },
        )
        .unwrap();
        requests
            .iter()
            .map(|pairs| server.submit(1, pairs.clone()))
            .collect()
        // `server` dropped here with work still queued.
    };
    for (h, pairs) in handles.into_iter().zip(&requests) {
        assert_eq!(
            h.recv().expect("drop must drain").results.len(),
            pairs.len()
        );
    }
}

/// A panicking lane fails *only* the requests in its batch: the poison
/// request gets an explicit `BackendFailed`, every good request —
/// before and after the panic — completes on the surviving lane, and
/// the server keeps serving new work.
#[test]
fn lane_panic_fails_only_the_affected_request() {
    let backend = Arc::new(PoisonBackend::new(2, Duration::ZERO));
    let server = Server::start(
        backend,
        ServeConfig {
            batch_pairs: 1, // one request per batch: the blast radius is one
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let before = good_requests(4, 1, 11);
    let h_before: Vec<ReplyHandle> = before
        .iter()
        .map(|pairs| server.submit(0, pairs.clone()))
        .collect();
    let h_poison = server.submit(0, poison_request(99));
    let after = good_requests(4, 1, 22);
    let h_after: Vec<ReplyHandle> = after
        .iter()
        .map(|pairs| server.submit(0, pairs.clone()))
        .collect();

    match h_poison.recv() {
        Err(ServeError::BackendFailed { detail }) => {
            assert!(detail.contains("poison"), "unexpected detail: {detail}")
        }
        other => panic!("poison request must fail with BackendFailed, got {other:?}"),
    }
    for h in h_before.into_iter().chain(h_after) {
        assert!(h.recv().is_ok(), "an unaffected request was failed");
    }
    // The server is degraded (one lane retired) but still serving.
    let late = server.submit(0, good_requests(1, 2, 33).remove(0));
    assert_eq!(
        late.recv()
            .expect("degraded server must serve")
            .results
            .len(),
        2
    );
    let stats = server.shutdown();
    assert_eq!(stats.lanes_retired, 1);
    assert_eq!(stats.failed, 1);
    assert_eq!(stats.completed, 9);
    assert_eq!(
        stats.submitted,
        stats.completed + stats.failed + stats.over_quota + stats.rejected_shutdown
    );
}

/// When every lane has retired, nothing hangs: queued requests fail
/// with an explicit error naming the cause, and later submissions are
/// refused immediately.
#[test]
fn all_lanes_dead_fails_fast_instead_of_hanging() {
    let backend = Arc::new(PoisonBackend::new(2, Duration::ZERO));
    let server = Server::start(
        backend,
        ServeConfig {
            batch_pairs: 1,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    // Two poisons, two lanes: each panic retires one lane, so after both
    // resolve no lane survives (a retired lane takes no more batches).
    let poisons = [
        server.submit(0, poison_request(1)),
        server.submit(0, poison_request(2)),
    ];
    let goods: Vec<ReplyHandle> = good_requests(5, 1, 44)
        .into_iter()
        .map(|pairs| server.submit(0, pairs))
        .collect();
    for h in poisons {
        assert!(matches!(h.recv(), Err(ServeError::BackendFailed { .. })));
    }
    // Every good request resolves — served before the collapse or failed
    // by the orphan sweep — but none hangs.
    let mut outcomes: Vec<Reply> = goods.into_iter().map(|h| h.recv()).collect();
    for r in &outcomes {
        if let Err(e) = r {
            assert!(
                matches!(e, ServeError::BackendFailed { .. }),
                "orphans must fail with BackendFailed, got {e}"
            );
        }
    }
    // A fresh submission after the collapse is refused immediately.
    outcomes.push(server.submit(0, good_requests(1, 1, 55).remove(0)).recv());
    match outcomes.last().unwrap() {
        Err(ServeError::BackendFailed { detail }) => {
            assert!(detail.contains("retired"), "unexpected detail: {detail}")
        }
        Ok(_) => panic!("a dead server served a request"),
        Err(e) => panic!("unexpected refusal: {e}"),
    }
    let stats = server.shutdown();
    assert_eq!(stats.lanes_retired, 2);
    assert_eq!(
        stats.submitted,
        stats.completed + stats.failed + stats.over_quota + stats.rejected_shutdown,
        "ledger must balance after total collapse: {stats:?}"
    );
}

/// Submissions racing shutdown: admitted-before-shutdown work drains,
/// everything after gets `ShuttingDown` — and the ledger still balances.
#[test]
fn submissions_after_shutdown_are_refused_not_dropped() {
    let backend = Arc::new(PoisonBackend::new(1, Duration::ZERO));
    let server = Server::start(backend, ServeConfig::default()).unwrap();
    let early = server.submit(0, good_requests(1, 2, 66).remove(0));
    let stats_mid = server.shutdown();
    let late = server.submit(0, good_requests(1, 1, 67).remove(0));
    assert_eq!(
        early
            .recv()
            .expect("pre-shutdown work drains")
            .results
            .len(),
        2
    );
    assert_eq!(late.recv(), Err(ServeError::ShuttingDown));
    assert_eq!(stats_mid.completed, 1);
    let stats = server.stats();
    assert_eq!(stats.rejected_shutdown, 1);
    assert_eq!(
        stats.submitted,
        stats.completed + stats.failed + stats.over_quota + stats.rejected_shutdown
    );
}
