//! Request/reply vocabulary of the service: what a client submits, what
//! it gets back, and every way the service can refuse — always as an
//! explicit reply, never a silent drop.

use logan_align::SeedExtendResult;
use std::sync::mpsc;

/// Server-assigned request identity, unique for the life of a server.
pub type RequestId = u64;

/// Client/tenant identity for admission accounting. The service does
/// not authenticate tenants — the id is whatever the transport in front
/// of it says it is; quotas are per-id.
pub type TenantId = u32;

/// One alignment request: a tenant asking for a block of read pairs to
/// be seed-extended. Pairs are aligned independently, so the service is
/// free to coalesce them with other requests' pairs or split them
/// across batches — results come back in the request's own pair order
/// regardless.
#[derive(Debug, Clone)]
pub struct AlignRequest {
    /// Who is asking (admission accounting key).
    pub tenant: TenantId,
    /// The pairs to align, each with its planted seed.
    pub pairs: Vec<logan_seq::readsim::ReadPair>,
}

/// A successful reply: per-pair results in the request's pair order —
/// bit-identical to aligning the request's pairs directly on the
/// backend, whatever batching the service chose (the `serve-equivalence`
/// premerge suite pins this).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AlignResponse {
    /// The id [`crate::Server::submit`] assigned to this request.
    pub id: RequestId,
    /// Per-pair results, request pair order.
    pub results: Vec<SeedExtendResult>,
    /// How many coalesced batches served this request (1 unless the
    /// request was split across batches).
    pub batches: usize,
}

/// Every way the service refuses or fails a request. All variants are
/// *replies*: an admitted or rejected request always hears back exactly
/// once.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// Admission control refused the request: admitting its pairs would
    /// push the tenant's in-flight work past its quota. A request whose
    /// own `requested` exceeds `quota` alone can never be admitted.
    OverQuota {
        /// The refused tenant.
        tenant: TenantId,
        /// The tenant's quota in pairs.
        quota: usize,
        /// Pairs the tenant already had in flight at refusal time.
        in_flight: usize,
        /// Pairs this request asked for.
        requested: usize,
    },
    /// The open-loop harness shed the request because the bounded
    /// submission queue was full. The threaded server never sheds — a
    /// full queue *blocks* the submitting client (closed-loop
    /// backpressure, PR 4's bounded-channel rule); only the simulator's
    /// open-loop arrivals, which cannot block, turn queue pressure into
    /// an explicit rejection.
    QueueFull {
        /// The configured queue depth (requests).
        depth: usize,
    },
    /// The backend lane aligning (part of) this request panicked, or
    /// every lane has already retired. Only requests with pairs in a
    /// panicking batch — plus everything still queued once *no* lane
    /// survives — fail this way; other requests are unaffected.
    BackendFailed {
        /// Human-readable cause (panic payload or retirement note).
        detail: String,
    },
    /// The request arrived after shutdown began. Requests admitted
    /// *before* shutdown are drained, not rejected.
    ShuttingDown,
    /// The request sat queued past the configured per-request deadline
    /// ([`crate::ServeConfig::deadline_s`]) without any of its pairs
    /// being dispatched, and was evicted at batch formation. A late
    /// explicit reply beats occupying the queue: the client already
    /// gave up, and the slot goes to a request that can still make its
    /// deadline. Requests with pairs already in flight are *not*
    /// expired — their device time is spent either way, so they run to
    /// a normal reply.
    DeadlineExceeded,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::OverQuota {
                tenant,
                quota,
                in_flight,
                requested,
            } => write!(
                f,
                "tenant {tenant} over quota: {in_flight} pairs in flight + {requested} requested > quota {quota}"
            ),
            ServeError::QueueFull { depth } => {
                write!(f, "submission queue full ({depth} requests)")
            }
            ServeError::BackendFailed { detail } => write!(f, "backend failed: {detail}"),
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
            ServeError::DeadlineExceeded => {
                write!(f, "request expired in queue past its deadline")
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// What a submitted request resolves to — exactly one of these per
/// submission, success or refusal.
pub type Reply = Result<AlignResponse, ServeError>;

/// The client's end of one request: a one-shot receiver that yields the
/// request's single [`Reply`].
#[derive(Debug)]
pub struct ReplyHandle {
    /// The id the server assigned; matches [`AlignResponse::id`] on
    /// success.
    pub id: RequestId,
    pub(crate) rx: mpsc::Receiver<Reply>,
}

impl ReplyHandle {
    /// Block until the reply arrives. Every submission gets exactly one
    /// reply — including rejections and shutdown — so this never blocks
    /// forever on a live or draining server.
    ///
    /// # Panics
    ///
    /// Panics if the server dropped the reply channel without replying,
    /// which would be a bug in the exactly-once contract.
    pub fn recv(self) -> Reply {
        self.rx
            .recv()
            .expect("server dropped a request without replying (exactly-once violation)")
    }

    /// Non-blocking poll: `Some(reply)` once the reply is in.
    pub fn try_recv(&self) -> Option<Reply> {
        self.rx.try_recv().ok()
    }
}
