//! Precision/recall scoring against simulator ground truth.

use crate::fxhash::FxHashSet;
use serde::{Deserialize, Serialize};

/// Confusion-matrix summary of reported overlaps.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OverlapMetrics {
    /// Reported pairs that truly overlap.
    pub tp: usize,
    /// Reported pairs that do not.
    pub fp: usize,
    /// True overlaps that were missed.
    pub fn_: usize,
    /// `tp / (tp + fp)`; 1.0 when nothing is reported.
    pub precision: f64,
    /// `tp / (tp + fn)`; 1.0 when there is no truth.
    pub recall: f64,
}

impl OverlapMetrics {
    /// Score `reported` `(i, j)` pairs (any order, `i != j`) against
    /// `truth` `(i, j, len)` with `i < j`.
    pub fn score(reported: &[(usize, usize)], truth: &[(usize, usize, usize)]) -> OverlapMetrics {
        let truth_set: FxHashSet<(usize, usize)> = truth
            .iter()
            .map(|&(i, j, _)| (i.min(j), i.max(j)))
            .collect();
        let mut reported_set: FxHashSet<(usize, usize)> = FxHashSet::default();
        for &(i, j) in reported {
            assert!(i != j, "self-overlap reported");
            reported_set.insert((i.min(j), i.max(j)));
        }
        let tp = reported_set.intersection(&truth_set).count();
        let fp = reported_set.len() - tp;
        let fn_ = truth_set.len() - tp;
        let precision = if reported_set.is_empty() {
            1.0
        } else {
            tp as f64 / reported_set.len() as f64
        };
        let recall = if truth_set.is_empty() {
            1.0
        } else {
            tp as f64 / truth_set.len() as f64
        };
        OverlapMetrics {
            tp,
            fp,
            fn_,
            precision,
            recall,
        }
    }

    /// Harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        if self.precision + self.recall == 0.0 {
            return 0.0;
        }
        2.0 * self.precision * self.recall / (self.precision + self.recall)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_report() {
        let truth = vec![(0, 1, 500), (1, 2, 700)];
        let m = OverlapMetrics::score(&[(0, 1), (2, 1)], &truth);
        assert_eq!((m.tp, m.fp, m.fn_), (2, 0, 0));
        assert_eq!(m.precision, 1.0);
        assert_eq!(m.recall, 1.0);
        assert_eq!(m.f1(), 1.0);
    }

    #[test]
    fn partial_report() {
        let truth = vec![(0, 1, 500), (1, 2, 700), (2, 3, 900)];
        let m = OverlapMetrics::score(&[(0, 1), (0, 3)], &truth);
        assert_eq!((m.tp, m.fp, m.fn_), (1, 1, 2));
        assert!((m.precision - 0.5).abs() < 1e-12);
        assert!((m.recall - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn duplicates_and_order_normalized() {
        let truth = vec![(0, 1, 100)];
        let m = OverlapMetrics::score(&[(1, 0), (0, 1), (1, 0)], &truth);
        assert_eq!((m.tp, m.fp, m.fn_), (1, 0, 0));
    }

    #[test]
    fn empty_edges() {
        let none = OverlapMetrics::score(&[], &[(0, 1, 10)]);
        assert_eq!(none.precision, 1.0);
        assert_eq!(none.recall, 0.0);
        assert_eq!(none.f1(), 0.0);
        let no_truth = OverlapMetrics::score(&[(0, 1)], &[]);
        assert_eq!(no_truth.recall, 1.0);
        assert_eq!(no_truth.precision, 0.0);
    }

    #[test]
    #[should_panic(expected = "self-overlap")]
    fn self_pair_rejected() {
        let _ = OverlapMetrics::score(&[(3, 3)], &[]);
    }
}
