//! The end-to-end BELLA pipeline with pluggable alignment backends.
//!
//! Alignment is delegated to any [`AlignBackend`] — the CPU pool, one
//! simulated GPU, the statically partitioned multi-GPU deployment, or a
//! work-stealing heterogeneous [`logan_core::fleet::Fleet`] — through
//! the object-safe trait, so the pipeline never matches on backend
//! kinds. The backend's scoring/X configuration must agree with the
//! [`BellaConfig`] it runs under (the adaptive threshold interprets
//! scores in the config's scoring system).
//!
//! Two execution shapes over the same stages (DESIGN.md §8):
//!
//! * [`BellaPipeline::run`] — the monolithic original: every stage
//!   materializes its full output before the next starts.
//! * [`BellaPipeline::run_streaming`] — the bounded-memory dataflow:
//!   reads arrive in [`ReadBatch`]es, the k-mer table is counted in
//!   hash shards that never coexist, the SpGEMM emits candidate tiles
//!   incrementally, and a producer thread feeds candidate blocks
//!   through a bounded channel to one consumer per backend *lane*
//!   ([`AlignBackend::lanes`]) so extension overlaps candidate
//!   generation — and a multi-lane backend (a fleet) drains the queue
//!   from every device at once instead of through a single consumer.
//!   Outputs are bit-identical: blocks are sequence-numbered and
//!   reassembled in order, so lane interleaving is unobservable.

use crate::binning::choose_seed;
use crate::chain::{chain_candidates, chain_tiles, ChainConfig, ChainedCandidate, MinimizerIndex};
use crate::kmer_count::{count_kmers, count_reliable_sharded};
use crate::matrix::{KmerMatrix, KmerMatrixBuilder};
use crate::metrics::OverlapMetrics;
use crate::prune::{reliable_bounds, reliable_kmers, ReliableBounds};
use crate::spgemm::{spgemm_candidates, spgemm_tiles, CandidatePair};
use crate::threshold::AdaptiveThreshold;
use logan_align::{seed_extend_with, AlignWorkspace, SeedExtendResult, XDropExtender};
use logan_core::{AlignBackend, BackendReport};
use logan_seq::readsim::{ReadBatch, ReadPair, ReadSet};
use logan_seq::{Scoring, Seed, Seq};
use serde::{Deserialize, Serialize};
use std::sync::{mpsc, Arc, Mutex};

/// Memory/concurrency budget of the streaming pipeline: every knob
/// bounds how much of some stage is live at once, so peak memory of the
/// candidate/alignment stages scales with these numbers instead of with
/// the input (the resident read store and the k-mer index remain
/// O(input), as in any overlapper that random-accesses reads).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PipelineBudget {
    /// Reads per [`ReadBatch`] at ingest, rows per SpGEMM tile, and the
    /// granularity of incremental matrix construction.
    pub batch_reads: usize,
    /// Hash partitions of the k-mer table; one shard's counts are
    /// resident at a time, so the table peak is ~`1/shards` of the
    /// monolithic counter (at the price of `shards` scans of the
    /// resident reads).
    pub shards: usize,
    /// Candidate blocks buffered between the SpGEMM producer and the
    /// alignment consumer; the channel bound is the backpressure rule —
    /// a fast producer blocks instead of ballooning.
    pub inflight_blocks: usize,
}

impl Default for PipelineBudget {
    fn default() -> PipelineBudget {
        PipelineBudget {
            batch_reads: 256,
            shards: 8,
            inflight_blocks: 2,
        }
    }
}

impl PipelineBudget {
    /// All knobs clamped to at least 1 (a zero budget means "smallest",
    /// not "nothing").
    pub fn clamped(self) -> PipelineBudget {
        PipelineBudget {
            batch_reads: self.batch_reads.max(1),
            shards: self.shards.max(1),
            inflight_blocks: self.inflight_blocks.max(1),
        }
    }
}

/// Which candidate generator feeds the X-drop extender.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Seeder {
    /// BELLA's SpGEMM over all reliable k-mers: every pair sharing at
    /// least one reliable k-mer is aligned (binning picks the seed).
    #[default]
    SpGemm,
    /// Minimap2-style (w,k) minimizer sketches + colinear chaining
    /// ([`crate::chain`]): only pairs whose best chain supports the
    /// `min_overlap` floor are aligned — a strict subset of the SpGEMM
    /// candidates at a fraction of the alignment work.
    Minimizer,
}

/// Pipeline configuration (BELLA defaults with the paper's parameters).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BellaConfig {
    /// Seed k-mer length (BELLA: 17).
    pub k: usize,
    /// X-drop threshold for the extension stage.
    pub x: i32,
    /// Alignment scoring.
    pub scoring: Scoring,
    /// Per-read error rate (drives pruning and the threshold).
    pub error_rate: f64,
    /// Sequencing depth hint (drives the reliable window).
    pub depth: f64,
    /// Adaptive-threshold slack δ.
    pub delta: f64,
    /// Poisson tail mass for the reliable upper bound.
    pub tail: f64,
    /// Minimum estimated overlap to report (BELLA's evaluation uses
    /// 2 kb; pairs whose k-mer geometry implies less are by construction
    /// uninteresting for assembly).
    pub min_overlap: usize,
    /// Override the computed reliable window (for experiments).
    pub reliable_override: Option<ReliableBounds>,
    /// Streaming budget (ignored by the monolithic [`BellaPipeline::run`]).
    pub budget: PipelineBudget,
    /// Candidate generator: SpGEMM (BELLA) or minimizer chaining.
    pub seeder: Seeder,
    /// Minimizer window size `w` (used by [`Seeder::Minimizer`] only;
    /// the sketch keeps ~`2/(w+1)` of the k-mer positions).
    pub minimizer_w: usize,
}

impl BellaConfig {
    /// Paper-default configuration at the given X.
    pub fn with_x(x: i32) -> BellaConfig {
        BellaConfig {
            k: 17,
            x,
            scoring: Scoring::default(),
            error_rate: 0.15,
            depth: 30.0,
            delta: 0.25,
            tail: 1e-4,
            min_overlap: 2000,
            reliable_override: None,
            budget: PipelineBudget::default(),
            seeder: Seeder::SpGemm,
            minimizer_w: 8,
        }
    }
}

/// One aligned candidate pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Overlap {
    /// Lower read id.
    pub r1: usize,
    /// Higher read id.
    pub r2: usize,
    /// The seed extension started from.
    pub seed: Seed,
    /// Binning-estimated overlap length.
    pub est_overlap: usize,
    /// Alignment outcome.
    pub result: SeedExtendResult,
    /// Did it clear the adaptive threshold?
    pub kept: bool,
}

/// Per-stage statistics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StageStats {
    /// Reads in.
    pub reads: usize,
    /// Distinct canonical k-mers.
    pub distinct_kmers: usize,
    /// Reliable k-mers after pruning.
    pub reliable_kmers: usize,
    /// The reliable window used.
    pub bounds: ReliableBounds,
    /// Nonzeros of the reads × k-mers matrix.
    pub matrix_nnz: usize,
    /// Candidate pairs out of the SpGEMM.
    pub candidates: usize,
    /// Pairs clearing the adaptive threshold.
    pub kept: usize,
    /// Total DP cells spent in alignment.
    pub total_cells: u64,
}

/// Pipeline output.
#[derive(Debug)]
pub struct BellaOutput {
    /// All aligned candidates (kept flag included), sorted by pair.
    pub overlaps: Vec<Overlap>,
    /// Stage statistics.
    pub stats: StageStats,
    /// The backend's merged performance report (see
    /// [`logan_core::backend::BackendReport`]): host wall and simulated
    /// time never mix, so it is meaningful for every backend kind.
    pub backend: BackendReport,
}

impl BellaOutput {
    /// The kept pairs as `(r1, r2)` tuples.
    pub fn kept_pairs(&self) -> Vec<(usize, usize)> {
        self.overlaps
            .iter()
            .filter(|o| o.kept)
            .map(|o| (o.r1, o.r2))
            .collect()
    }

    /// Score against ground truth overlaps (`(i, j, len)` with `i < j`).
    pub fn metrics(&self, truth: &[(usize, usize, usize)]) -> OverlapMetrics {
        OverlapMetrics::score(&self.kept_pairs(), truth)
    }
}

/// The BELLA pipeline.
pub struct BellaPipeline {
    /// Configuration.
    pub config: BellaConfig,
}

impl BellaPipeline {
    /// Build with a configuration.
    pub fn new(config: BellaConfig) -> BellaPipeline {
        BellaPipeline { config }
    }

    /// Stages 1–4: k-mer counting, pruning, then candidate generation
    /// under the configured [`Seeder`] — SpGEMM + binning, or minimizer
    /// sketching + chaining (where only pairs whose best chain supports
    /// `min_overlap` are admitted). Returns the to-be-aligned pairs
    /// (with seeds and overlap estimates) plus partially filled stats.
    pub fn candidates(
        &self,
        reads: &[Seq],
    ) -> (Vec<ReadPair>, Vec<(usize, usize, usize)>, StageStats) {
        let cfg = &self.config;
        let counts = count_kmers(reads, cfg.k);
        let bounds = cfg
            .reliable_override
            .unwrap_or_else(|| reliable_bounds(cfg.depth, cfg.error_rate, cfg.k, cfg.tail));
        let reliable = reliable_kmers(&counts, bounds);

        let mut pairs = Vec::new();
        let mut meta = Vec::new();
        let nnz;
        match cfg.seeder {
            Seeder::SpGemm => {
                let matrix = KmerMatrix::build(reads, cfg.k, &reliable);
                nnz = matrix.nnz();
                let cands = spgemm_candidates(&matrix);
                pairs.reserve(cands.len());
                meta.reserve(cands.len());
                for c in &cands {
                    let (r1, r2) = (c.r1 as usize, c.r2 as usize);
                    let (seed, est) = choose_seed(reads[r1].len(), reads[r2].len(), c, cfg.k);
                    pairs.push(ReadPair {
                        query: reads[r1].clone(),
                        target: reads[r2].clone(),
                        seed,
                        template_len: est,
                    });
                    meta.push((r1, r2, est));
                }
            }
            Seeder::Minimizer => {
                let mut index = MinimizerIndex::new(cfg.minimizer_w, cfg.k);
                index.push_batch(reads, &reliable);
                nnz = index.nnz();
                for c in chain_candidates(&index, ChainConfig::default()) {
                    if c.est < cfg.min_overlap {
                        continue; // chain geometry rules the pair out
                    }
                    let (r1, r2) = (c.r1 as usize, c.r2 as usize);
                    pairs.push(ReadPair {
                        query: reads[r1].clone(),
                        target: reads[r2].clone(),
                        seed: c.seed,
                        template_len: c.est,
                    });
                    meta.push((r1, r2, c.est));
                }
            }
        }
        let stats = StageStats {
            reads: reads.len(),
            distinct_kmers: counts.len(),
            reliable_kmers: reliable.len(),
            bounds,
            matrix_nnz: nnz,
            candidates: meta.len(),
            kept: 0,
            total_cells: 0,
        };
        (pairs, meta, stats)
    }

    /// Panic unless the backend's declared X-drop parameters (when it
    /// declares any) agree with this pipeline's config: the adaptive
    /// threshold interprets scores in the config's scoring system at
    /// the config's X, so a mismatched backend would silently
    /// misclassify every overlap — the failure mode the old closed
    /// backend enum made impossible by construction.
    fn check_backend(&self, backend: &dyn AlignBackend) {
        if let Some((scoring, x)) = backend.xdrop_params() {
            assert!(
                scoring == self.config.scoring && x == self.config.x,
                "backend {} aligns under {:?}/X={} but the pipeline is configured {:?}/X={}",
                backend.name(),
                scoring,
                x,
                self.config.scoring,
                self.config.x
            );
        }
    }

    /// Run the full pipeline on `reads` with the given backend.
    ///
    /// # Panics
    ///
    /// Panics when the backend declares X-drop parameters that disagree
    /// with [`BellaConfig::scoring`]/[`BellaConfig::x`].
    pub fn run(&self, reads: &[Seq], backend: &dyn AlignBackend) -> BellaOutput {
        self.check_backend(backend);
        let (pairs, meta, mut stats) = self.candidates(reads);
        let (results, backend_report) = backend.align_block(&pairs);

        let threshold = AdaptiveThreshold::new(
            self.config.scoring,
            self.config.error_rate,
            self.config.delta,
        );
        let mut overlaps = Vec::with_capacity(results.len());
        let mut kept = 0usize;
        let mut cells = 0u64;
        for (((r1, r2, est), pair), result) in meta.into_iter().zip(&pairs).zip(results) {
            let keep = est >= self.config.min_overlap && threshold.keep(result.score, est);
            kept += keep as usize;
            cells += result.cells();
            overlaps.push(Overlap {
                r1,
                r2,
                seed: pair.seed,
                est_overlap: est,
                result,
                kept: keep,
            });
        }
        stats.kept = kept;
        stats.total_cells = cells;
        BellaOutput {
            overlaps,
            stats,
            backend: backend_report,
        }
    }

    /// Run the full pipeline as a streaming, sharded, bounded-memory
    /// dataflow; bit-identical output to [`BellaPipeline::run`] on the
    /// same reads in the same order.
    ///
    /// Stages (DESIGN.md §8):
    ///
    /// 1. **Ingest** — `batches` are drained into the resident read
    ///    store; sources ([`logan_seq::fasta::FastaBatches`],
    ///    [`ReadSet::seq_batches`]) hold one bounded batch at a time.
    /// 2. **Sharded counting** — [`count_reliable_sharded`] reduces the
    ///    k-mer table to the reliable set one hash shard per wave, so at
    ///    most `1/shards` of the table is ever resident.
    /// 3. **Index** — the reads × reliable-k-mers matrix is appended
    ///    batch by batch ([`KmerMatrixBuilder`]) and stays resident (it
    ///    is the index alignment reads from, O(nnz)).
    /// 4. **Candidates ∥ alignment** — a producer thread walks
    ///    [`spgemm_tiles`], turns each tile into a sequence-numbered
    ///    candidate block (seeds chosen, read pairs materialized) and
    ///    sends it down a channel bounded at `inflight_blocks`; one
    ///    consumer thread per backend *lane* pulls blocks and aligns
    ///    them ([`AlignBackend::align_block_on`]), so extension overlaps
    ///    candidate generation, a multi-lane backend (fleet, multi-GPU)
    ///    keeps every device busy, and at most
    ///    `inflight_blocks + lanes + 1` blocks exist at once (queued,
    ///    being aligned, being produced). A full channel blocks the
    ///    producer — that is the backpressure rule keeping the candidate
    ///    stage O(batch) instead of O(genome). Aligned blocks shed their
    ///    sequences immediately and are reassembled in sequence-number
    ///    order, so outputs do not depend on lane interleaving.
    pub fn run_streaming<I>(&self, batches: I, backend: &dyn AlignBackend) -> BellaOutput
    where
        I: IntoIterator<Item = ReadBatch>,
    {
        self.check_backend(backend);
        let cfg = &self.config;
        let budget = cfg.budget.clamped();

        // Stage 1: ingest bounded batches into the resident store.
        let mut reads: Vec<Seq> = Vec::new();
        for batch in batches {
            debug_assert_eq!(batch.start_id, reads.len(), "batches must be contiguous");
            reads.extend(batch.seqs);
        }

        // Stage 2: sharded counting straight into the reliable window.
        let bounds = cfg
            .reliable_override
            .unwrap_or_else(|| reliable_bounds(cfg.depth, cfg.error_rate, cfg.k, cfg.tail));
        let (distinct, reliable) = count_reliable_sharded(&reads, cfg.k, budget.shards, bounds);

        // Stage 3: incremental index construction — the CSR k-mer
        // matrix or the minimizer sketch index, per the configured
        // seeder. Both builders are batching-invariant, so any chunking
        // equals the monolithic one-shot build.
        let index = match cfg.seeder {
            Seeder::SpGemm => {
                let mut builder = KmerMatrixBuilder::new(cfg.k, &reliable);
                for chunk in reads.chunks(budget.batch_reads) {
                    builder.push_batch(chunk);
                }
                SeedIndex::SpGemm(builder.finish())
            }
            Seeder::Minimizer => {
                let mut index = MinimizerIndex::new(cfg.minimizer_w, cfg.k);
                for chunk in reads.chunks(budget.batch_reads) {
                    index.push_batch(chunk, &reliable);
                }
                SeedIndex::Minimizer(index)
            }
        };

        let mut stats = StageStats {
            reads: reads.len(),
            distinct_kmers: distinct,
            reliable_kmers: reliable.len(),
            bounds,
            matrix_nnz: match &index {
                SeedIndex::SpGemm(m) => m.nnz(),
                SeedIndex::Minimizer(i) => i.nnz(),
            },
            candidates: 0,
            kept: 0,
            total_cells: 0,
        };

        // Stage 4: one producer, `lanes` consumers. The producer owns
        // candidate generation; each consumer owns one backend lane.
        let lanes = backend.lanes().max(1);
        let (tx, rx) = mpsc::sync_channel::<(usize, CandidateBlock)>(budget.inflight_blocks);
        // The receiver is shared by all consumers behind a mutex; each
        // holds one Arc clone and the spawning frame drops its own, so
        // when every consumer has exited (or panicked) the receiver is
        // gone and a producer blocked in `send` gets an Err instead of
        // deadlocking the scope join.
        let rx = Arc::new(Mutex::new(rx));
        let (reads_ref, index_ref) = (&reads, &index);
        let k = cfg.k;
        let min_overlap = cfg.min_overlap;
        let mut done: Vec<(usize, AlignedBlock)> = Vec::new();
        let mut lane_reports: Vec<BackendReport> = Vec::new();
        std::thread::scope(|scope| {
            scope.spawn(move || {
                match index_ref {
                    SeedIndex::SpGemm(matrix) => {
                        for (seq_no, tile) in spgemm_tiles(matrix, budget.batch_reads)
                            .filter(|t| !t.is_empty())
                            .enumerate()
                        {
                            let block = CandidateBlock::build(&tile, reads_ref, k);
                            if tx.send((seq_no, block)).is_err() {
                                return; // all consumers gone; stop producing
                            }
                        }
                    }
                    SeedIndex::Minimizer(mindex) => {
                        // Tiles whose every candidate fails the
                        // min_overlap admission shrink to empty blocks
                        // and are skipped, mirroring the empty-tile
                        // filter above; the per-candidate filter equals
                        // the monolithic path's by construction.
                        for (seq_no, block) in
                            chain_tiles(mindex, budget.batch_reads, ChainConfig::default())
                                .map(|tile| {
                                    CandidateBlock::from_chained(&tile, reads_ref, min_overlap)
                                })
                                .filter(|b| !b.meta.is_empty())
                                .enumerate()
                        {
                            if tx.send((seq_no, block)).is_err() {
                                return;
                            }
                        }
                    }
                }
                // tx drops here, closing the channel.
            });
            let consumers: Vec<_> = (0..lanes)
                .map(|lane| {
                    let rx = Arc::clone(&rx);
                    scope.spawn(move || {
                        let mut report = BackendReport::empty();
                        let mut blocks: Vec<(usize, AlignedBlock)> = Vec::new();
                        loop {
                            // Hold the receiver lock only for the recv —
                            // other lanes pull the next block while this
                            // one aligns.
                            let msg = rx.lock().expect("receiver lock poisoned").recv();
                            let Ok((seq_no, block)) = msg else { break };
                            let (results, rep) = backend.align_block_on(lane, &block.pairs);
                            report.merge(rep);
                            blocks.push((seq_no, AlignedBlock::strip(block, results)));
                            // block.pairs (the cloned sequences) die here.
                        }
                        (report, blocks)
                    })
                })
                .collect();
            drop(rx); // consumers hold the only remaining receiver refs
            for handle in consumers {
                let (report, blocks) = handle.join().expect("consumer lane panicked");
                lane_reports.push(report);
                done.extend(blocks);
            }
        });

        // Reassemble in production order: lane interleaving must be
        // unobservable in the output.
        done.sort_by_key(|&(seq_no, _)| seq_no);
        let threshold = AdaptiveThreshold::new(cfg.scoring, cfg.error_rate, cfg.delta);
        let mut overlaps: Vec<Overlap> = Vec::new();
        for (_, block) in done {
            stats.candidates += block.meta.len();
            for (((r1, r2, est), seed), result) in
                block.meta.into_iter().zip(block.seeds).zip(block.results)
            {
                let keep = est >= cfg.min_overlap && threshold.keep(result.score, est);
                stats.kept += keep as usize;
                stats.total_cells += result.cells();
                overlaps.push(Overlap {
                    r1,
                    r2,
                    seed,
                    est_overlap: est,
                    result,
                    kept: keep,
                });
            }
        }
        // Lanes ran concurrently: fold their reports with the
        // concurrent merge (work adds, time domains take the max).
        let mut backend_report = BackendReport::empty();
        for rep in lane_reports {
            backend_report.merge_concurrent(rep);
        }

        BellaOutput {
            overlaps,
            stats,
            backend: backend_report,
        }
    }

    /// Convenience: [`BellaPipeline::run_streaming`] over a simulated
    /// [`ReadSet`] (depth and error rate taken from the set itself),
    /// returning output plus ground-truth metrics at `min_overlap` —
    /// the streaming mirror of [`BellaPipeline::run_on_readset`].
    pub fn run_streaming_on_readset(
        &self,
        rs: &ReadSet,
        backend: &dyn AlignBackend,
        min_overlap: usize,
    ) -> (BellaOutput, OverlapMetrics) {
        let mut cfg = self.config;
        cfg.depth = rs.depth();
        cfg.error_rate = rs.error_rate;
        let pipeline = BellaPipeline::new(cfg);
        let out = pipeline.run_streaming(rs.seq_batches(cfg.budget.clamped().batch_reads), backend);
        let truth = rs.true_overlaps(min_overlap);
        let metrics = out.metrics(&truth);
        (out, metrics)
    }

    /// Convenience: run on a simulated [`ReadSet`] (depth taken from the
    /// set itself) and return output plus ground-truth metrics at
    /// `min_overlap`.
    pub fn run_on_readset(
        &self,
        rs: &ReadSet,
        backend: &dyn AlignBackend,
        min_overlap: usize,
    ) -> (BellaOutput, OverlapMetrics) {
        let mut cfg = self.config;
        cfg.depth = rs.depth();
        cfg.error_rate = rs.error_rate;
        let pipeline = BellaPipeline::new(cfg);
        let seqs: Vec<Seq> = rs.reads.iter().map(|r| r.seq.clone()).collect();
        let out = pipeline.run(&seqs, backend);
        let truth = rs.true_overlaps(min_overlap);
        let metrics = out.metrics(&truth);
        (out, metrics)
    }
}

/// One producer→consumer unit of the streaming pipeline: a SpGEMM
/// tile's candidates with seeds chosen and read pairs materialized.
/// Blocks are the only place candidate sequences are cloned, so peak
/// candidate memory is `O(inflight_blocks × block pairs)` instead of
/// `O(all candidates)`.
struct CandidateBlock {
    /// `(r1, r2, est_overlap)` per pair, in `(r1, r2)` order.
    meta: Vec<(usize, usize, usize)>,
    /// The aligned-backend input, parallel to `meta`.
    pairs: Vec<ReadPair>,
}

/// The seeder-specific candidate index of the streaming pipeline: the
/// CSR reads × k-mers matrix (SpGEMM path) or the minimizer sketch
/// index (chaining path). Built once in stage 3, walked tile by tile by
/// the stage-4 producer.
enum SeedIndex {
    SpGemm(KmerMatrix),
    Minimizer(MinimizerIndex),
}

impl CandidateBlock {
    /// Block from chained candidates, admitting only pairs whose chain
    /// supports at least `min_overlap` — the minimizer path's
    /// candidate-volume win over the align-everything SpGEMM path.
    fn from_chained(
        tile: &[ChainedCandidate],
        reads: &[Seq],
        min_overlap: usize,
    ) -> CandidateBlock {
        let mut meta = Vec::new();
        let mut pairs = Vec::new();
        for c in tile {
            if c.est < min_overlap {
                continue;
            }
            let (r1, r2) = (c.r1 as usize, c.r2 as usize);
            pairs.push(ReadPair {
                query: reads[r1].clone(),
                target: reads[r2].clone(),
                seed: c.seed,
                template_len: c.est,
            });
            meta.push((r1, r2, c.est));
        }
        CandidateBlock { meta, pairs }
    }

    fn build(tile: &[CandidatePair], reads: &[Seq], k: usize) -> CandidateBlock {
        let mut meta = Vec::with_capacity(tile.len());
        let mut pairs = Vec::with_capacity(tile.len());
        for c in tile {
            let (r1, r2) = (c.r1 as usize, c.r2 as usize);
            let (seed, est) = choose_seed(reads[r1].len(), reads[r2].len(), c, k);
            pairs.push(ReadPair {
                query: reads[r1].clone(),
                target: reads[r2].clone(),
                seed,
                template_len: est,
            });
            meta.push((r1, r2, est));
        }
        CandidateBlock { meta, pairs }
    }
}

/// A candidate block after alignment, stripped of its sequences: only
/// the metadata, seeds and results survive until the in-order
/// reassembly, so a lane holding many finished blocks costs O(pairs)
/// small records, not O(pairs × read length) bases.
struct AlignedBlock {
    meta: Vec<(usize, usize, usize)>,
    seeds: Vec<Seed>,
    results: Vec<SeedExtendResult>,
}

impl AlignedBlock {
    fn strip(block: CandidateBlock, results: Vec<SeedExtendResult>) -> AlignedBlock {
        AlignedBlock {
            meta: block.meta,
            seeds: block.pairs.iter().map(|p| p.seed).collect(),
            results,
        }
    }
}

/// Reference single-threaded alignment of a candidate list — used by
/// tests to pin backend results. One workspace serves the whole list
/// (DESIGN.md §7); results are identical to per-call fresh scratch.
pub fn align_candidates_reference(
    pairs: &[ReadPair],
    scoring: Scoring,
    x: i32,
) -> Vec<SeedExtendResult> {
    let ext = XDropExtender::new(scoring, x);
    let mut ws = AlignWorkspace::new();
    pairs
        .iter()
        .map(|p| seed_extend_with(&p.query, &p.target, p.seed, &ext, &mut ws))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use logan_align::{Engine, XDropCpuAligner};
    use logan_core::{Fleet, GpuBackend, LoganConfig, LoganExecutor, MultiGpu};
    use logan_gpusim::DeviceSpec;
    use logan_seq::readsim::ReadSimulator;
    use logan_seq::ErrorProfile;

    fn small_readset() -> ReadSet {
        let sim = ReadSimulator {
            read_len: (900, 1400),
            errors: ErrorProfile::pacbio(0.10),
            ..ReadSimulator::uniform(25_000, 8.0)
        };
        sim.generate(42)
    }

    fn test_config(x: i32) -> BellaConfig {
        BellaConfig {
            error_rate: 0.10,
            // The test reads are 0.9–1.4 kb, so BELLA's default 2 kb
            // floor would keep nothing; scale it to the read length.
            min_overlap: 700,
            ..BellaConfig::with_x(x)
        }
    }

    fn cpu_backend(threads: usize, x: i32) -> XDropCpuAligner {
        XDropCpuAligner::new(threads, Scoring::default(), x, Engine::Scalar)
    }

    #[test]
    fn pipeline_finds_true_overlaps_cpu() {
        let rs = small_readset();
        let pipeline = BellaPipeline::new(test_config(50));
        let aligner = cpu_backend(4, 50);
        let (out, _) = pipeline.run_on_readset(&rs, &aligner, 500);
        assert!(out.stats.candidates > 0, "SpGEMM must find candidates");
        assert!(out.stats.kept > 0, "some overlaps must clear the line");
        // Precision against a loose truth (≥500 bp): anything we keep at
        // min_overlap=700 should truly overlap by at least 500.
        let kept = out.kept_pairs();
        let precision = OverlapMetrics::score(&kept, &rs.true_overlaps(500)).precision;
        assert!(precision > 0.85, "precision {precision:.2} too low");
        // Recall against a strict truth (≥1000 bp): long overlaps must
        // not be missed just because the estimate sits near the floor.
        let recall = OverlapMetrics::score(&kept, &rs.true_overlaps(1000)).recall;
        assert!(recall > 0.55, "recall {recall:.2} too low");
    }

    #[test]
    fn gpu_backend_reproduces_cpu_backend() {
        let rs = small_readset();
        let pipeline = BellaPipeline::new(test_config(50));
        let aligner = cpu_backend(2, 50);
        let exec = LoganExecutor::new(DeviceSpec::v100(), LoganConfig::with_x(50));
        let (cpu_out, _) = pipeline.run_on_readset(&rs, &aligner, 600);
        let (gpu_out, _) = pipeline.run_on_readset(&rs, &exec, 600);
        assert_eq!(cpu_out.kept_pairs(), gpu_out.kept_pairs());
        assert_eq!(cpu_out.stats.total_cells, gpu_out.stats.total_cells);
        for (a, b) in cpu_out.overlaps.iter().zip(&gpu_out.overlaps) {
            assert_eq!(a.result, b.result);
        }
        assert!(gpu_out.backend.sim_time_s > 0.0, "GPU run simulates time");
        assert_eq!(cpu_out.backend.sim_time_s, 0.0, "CPU run is host-only");
        assert!(cpu_out.backend.wall_s > 0.0);
        assert_eq!(gpu_out.backend.total_cells, gpu_out.stats.total_cells);
    }

    #[test]
    fn multi_gpu_backend_matches_too() {
        let rs = small_readset();
        let pipeline = BellaPipeline::new(test_config(30));
        let aligner = cpu_backend(2, 30);
        let multi = MultiGpu::new(3, DeviceSpec::v100(), LoganConfig::with_x(30));
        let (cpu_out, _) = pipeline.run_on_readset(&rs, &aligner, 600);
        let (mg_out, _) = pipeline.run_on_readset(&rs, &multi, 600);
        assert_eq!(cpu_out.kept_pairs(), mg_out.kept_pairs());
    }

    #[test]
    fn fleet_backend_matches_too() {
        // The tentpole seam: a heterogeneous work-stealing fleet behind
        // the same trait object produces bit-identical pipeline output.
        let rs = small_readset();
        let pipeline = BellaPipeline::new(test_config(30));
        let aligner = cpu_backend(2, 30);
        let cfg = LoganConfig::with_x(30);
        let fleet = Fleet::new(vec![
            Box::new(GpuBackend::new(
                LoganExecutor::new(DeviceSpec::v100(), cfg),
                1,
            )),
            Box::new(cpu_backend(2, 30)),
        ]);
        let (cpu_out, _) = pipeline.run_on_readset(&rs, &aligner, 600);
        let (fleet_out, _) = pipeline.run_on_readset(&rs, &fleet, 600);
        assert_eq!(cpu_out.overlaps, fleet_out.overlaps);
        assert_eq!(cpu_out.stats, fleet_out.stats);
    }

    #[test]
    fn stats_are_internally_consistent() {
        let rs = small_readset();
        let pipeline = BellaPipeline::new(test_config(50));
        let aligner = cpu_backend(2, 50);
        let (out, _) = pipeline.run_on_readset(&rs, &aligner, 600);
        assert_eq!(out.overlaps.len(), out.stats.candidates);
        assert_eq!(
            out.stats.kept,
            out.overlaps.iter().filter(|o| o.kept).count()
        );
        assert!(out.stats.reliable_kmers <= out.stats.distinct_kmers);
        assert_eq!(
            out.stats.total_cells,
            out.overlaps.iter().map(|o| o.result.cells()).sum::<u64>()
        );
        for o in &out.overlaps {
            assert!(o.r1 < o.r2);
        }
    }

    #[test]
    fn higher_x_does_not_reduce_kept_overlaps() {
        // §VI-B: larger X raises scores of true overlaps toward the
        // expectation line, improving separation.
        let rs = small_readset();
        let kept = |x: i32| {
            let pipeline = BellaPipeline::new(test_config(x));
            let aligner = cpu_backend(4, x);
            let (out, m) = pipeline.run_on_readset(&rs, &aligner, 600);
            (out.stats.kept, m.recall)
        };
        let (kept_small, recall_small) = kept(5);
        let (kept_large, recall_large) = kept(100);
        assert!(kept_large >= kept_small);
        assert!(recall_large >= recall_small);
    }

    /// The tentpole invariant: the streaming dataflow is bit-identical
    /// to the monolithic pipeline on every backend and for adversarial
    /// budgets (1-read batches, 1 shard, many shards, tiny channels).
    #[test]
    fn streaming_is_bit_identical_to_monolithic() {
        let rs = small_readset();
        let aligner = cpu_backend(4, 50);
        let exec = LoganExecutor::new(DeviceSpec::v100(), LoganConfig::with_x(50));
        let multi = MultiGpu::new(3, DeviceSpec::v100(), LoganConfig::with_x(50));
        let backends: [&dyn AlignBackend; 3] = [&aligner, &exec, &multi];
        let budgets = [
            PipelineBudget::default(),
            PipelineBudget {
                batch_reads: 1,
                shards: 1,
                inflight_blocks: 1,
            },
            PipelineBudget {
                batch_reads: 7,
                shards: 13,
                inflight_blocks: 4,
            },
            PipelineBudget {
                batch_reads: 0,
                shards: 0,
                inflight_blocks: 0,
            },
        ];
        for (bi, backend) in backends.iter().enumerate() {
            let base = BellaPipeline::new(test_config(50));
            let (mono, mono_metrics) = base.run_on_readset(&rs, *backend, 600);
            // Full budget sweep on the CPU backend; one adversarial
            // budget for the simulated-GPU backends (their agreement
            // with the CPU backend is pinned by the backend tests, so
            // re-sweeping budgets there only re-spends wall time).
            let sweep: &[PipelineBudget] = if bi == 0 { &budgets } else { &budgets[1..2] };
            for &budget in sweep {
                let mut cfg = test_config(50);
                cfg.budget = budget;
                let pipeline = BellaPipeline::new(cfg);
                let (stream, metrics) = pipeline.run_streaming_on_readset(&rs, *backend, 600);
                assert_eq!(
                    stream.overlaps, mono.overlaps,
                    "overlaps must be bit-identical ({budget:?})"
                );
                assert_eq!(stream.stats, mono.stats, "stats must match ({budget:?})");
                assert_eq!(metrics, mono_metrics);
            }
        }
    }

    #[test]
    fn minimizer_seeder_finds_true_overlaps() {
        let rs = small_readset();
        let mut cfg = test_config(50);
        cfg.seeder = Seeder::Minimizer;
        let pipeline = BellaPipeline::new(cfg);
        let aligner = cpu_backend(4, 50);
        let (out, _) = pipeline.run_on_readset(&rs, &aligner, 700);
        assert!(out.stats.candidates > 0, "chaining must admit candidates");
        assert!(out.stats.kept > 0);
        // Every admitted pair carries a chain-supported estimate.
        for o in &out.overlaps {
            assert!(o.est_overlap >= 700);
            assert!(o.seed.qpos + o.seed.len <= rs.reads[o.r1].seq.len());
            assert!(o.seed.tpos + o.seed.len <= rs.reads[o.r2].seq.len());
        }
        // The sketch admits far fewer pairs than the SpGEMM path...
        let spg = BellaPipeline::new(test_config(50));
        let (spg_out, spg_metrics) = spg.run_on_readset(&rs, &aligner, 700);
        assert!(out.stats.candidates < spg_out.stats.candidates);
        // ...at comparable recall.
        let metrics = out.metrics(&rs.true_overlaps(700));
        assert!(
            metrics.recall >= 0.90 * spg_metrics.recall,
            "minimizer recall {:.3} vs spgemm {:.3}",
            metrics.recall,
            spg_metrics.recall
        );
    }

    #[test]
    fn minimizer_streaming_is_bit_identical_to_monolithic() {
        let rs = small_readset();
        let aligner = cpu_backend(4, 50);
        let mut base = test_config(50);
        base.seeder = Seeder::Minimizer;
        let (mono, mono_metrics) = BellaPipeline::new(base).run_on_readset(&rs, &aligner, 700);
        for budget in [
            PipelineBudget::default(),
            PipelineBudget {
                batch_reads: 1,
                shards: 1,
                inflight_blocks: 1,
            },
            PipelineBudget {
                batch_reads: 7,
                shards: 13,
                inflight_blocks: 4,
            },
        ] {
            let mut cfg = base;
            cfg.budget = budget;
            let pipeline = BellaPipeline::new(cfg);
            let (stream, metrics) = pipeline.run_streaming_on_readset(&rs, &aligner, 700);
            assert_eq!(stream.overlaps, mono.overlaps, "({budget:?})");
            assert_eq!(stream.stats, mono.stats, "({budget:?})");
            assert_eq!(metrics, mono_metrics);
        }
    }

    #[test]
    fn streaming_report_accumulates_across_blocks() {
        let rs = small_readset();
        let mut cfg = test_config(50);
        cfg.budget = PipelineBudget {
            batch_reads: 16,
            shards: 4,
            inflight_blocks: 2,
        };
        let pipeline = BellaPipeline::new(cfg);
        let aligner = cpu_backend(2, 50);
        let (out, _) = pipeline.run_streaming_on_readset(&rs, &aligner, 600);
        assert!(out.backend.wall_s > 0.0, "CPU wall accumulates over blocks");
        assert_eq!(out.backend.sim_time_s, 0.0);
        assert!(out.backend.blocks > 1, "16-read tiles make several blocks");
        let multi = MultiGpu::new(2, DeviceSpec::v100(), LoganConfig::with_x(50));
        let (out, _) = pipeline.run_streaming_on_readset(&rs, &multi, 600);
        assert!(out.backend.sim_time_s > 0.0);
        assert_eq!(out.backend.total_cells, out.stats.total_cells);
        assert_eq!(
            out.backend.pairs, out.stats.candidates,
            "every candidate aligned on exactly one lane"
        );
    }

    #[test]
    #[should_panic(expected = "aligns under")]
    fn mismatched_backend_rejected() {
        // A backend bound to X=99 must not run under a pipeline
        // configured at X=50: the adaptive threshold would misread its
        // scores. The old closed enum made this impossible; the trait
        // seam enforces it through `AlignBackend::xdrop_params`.
        let pipeline = BellaPipeline::new(test_config(50));
        let aligner = cpu_backend(1, 99);
        let _ = pipeline.run(&[], &aligner);
    }

    #[test]
    fn streaming_empty_input() {
        let pipeline = BellaPipeline::new(test_config(50));
        let aligner = cpu_backend(1, 50);
        let out = pipeline.run_streaming(std::iter::empty(), &aligner);
        assert!(out.overlaps.is_empty());
        assert_eq!(out.stats.reads, 0);
        assert_eq!(out.stats.candidates, 0);
        assert_eq!(out.backend.gcups(), 0.0, "empty run reports 0.0 GCUPS");
    }

    #[test]
    fn reliable_override_respected() {
        let rs = small_readset();
        let seqs: Vec<Seq> = rs.reads.iter().map(|r| r.seq.clone()).collect();
        let mut cfg = BellaConfig::with_x(20);
        cfg.reliable_override = Some(crate::prune::ReliableBounds { lo: 2, hi: 3 });
        let (_, _, stats) = BellaPipeline::new(cfg).candidates(&seqs);
        assert_eq!(stats.bounds, crate::prune::ReliableBounds { lo: 2, hi: 3 });
    }
}
