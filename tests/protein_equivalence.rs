//! Differential test harness for the [`ScoreProfile`] seam, run as its
//! own premerge step (`protein-equivalence`). Three properties pin the
//! refactor:
//!
//! 1. **DNA is bit-identical to the pre-profile code.** A plain
//!    [`Scoring`], its `ScoreProfile::MatchMismatch` wrapping, and the
//!    same scheme spelled as a dense [`SubstMatrix`] all produce the
//!    same results, across engines and backends (proptested over seeds,
//!    error rates and X values).
//! 2. **Scalar and SIMD agree under BLOSUM62**, with the fallback
//!    accounted for: lengths straddle the i16 eligibility boundary so
//!    the suite provably exercises both the vector kernel and its
//!    scalar fallback.
//! 3. **Six-frame translation round-trips** and stop codons segment
//!    frames correctly, all the way through an alignment: a peptide
//!    encoded into DNA is recovered from its reading frame with the
//!    exact score the protein-level alignment produces.

use logan::align::simd_eligible;
use logan::prelude::*;
use logan::seq::profile::SubstMatrix;
use logan::seq::translate::{six_frame_segments, translate_frame, Frame};
use logan::seq::{Alphabet, ScoreProfile};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_protein(n: usize, rng: &mut StdRng) -> Seq {
    Seq::from_codes(
        (0..n).map(|_| rng.gen_range(0..20u8)).collect(),
        Alphabet::Protein,
    )
}

/// A homolog of `q`: `sub_rate` of the residues resampled.
fn mutate(q: &Seq, sub_rate: f64, rng: &mut StdRng) -> Seq {
    let mut codes = q.as_slice().to_vec();
    for c in codes.iter_mut() {
        if rng.gen_bool(sub_rate) {
            *c = rng.gen_range(0..20u8);
        }
    }
    Seq::from_codes(codes, Alphabet::Protein)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Property 1, engine level: the three spellings of one DNA scheme —
    /// legacy `Scoring`, its profile wrapping, and the dense-matrix
    /// encoding — are bit-identical on both engines.
    #[test]
    fn dna_profile_spellings_are_bit_identical(
        seed in 0u64..1_000_000,
        n in 1usize..600,
        err_pct in 2u32..40,
        x in 0i32..200,
    ) {
        let pairs = PairSet::generate_with_lengths(
            2, err_pct as f64 / 100.0, n, n + 200, seed,
        ).pairs;
        let scoring = Scoring::default();
        let wrapped = ScoreProfile::MatchMismatch(scoring);
        let dense = ScoreProfile::Matrix(SubstMatrix::match_mismatch(
            Alphabet::Dna,
            scoring.match_score,
            scoring.mismatch,
            scoring.gap,
        ));
        for p in &pairs {
            for engine in [Engine::Scalar, Engine::Simd] {
                let want = engine.extend(&p.query, &p.target, scoring, x);
                prop_assert_eq!(engine.extend(&p.query, &p.target, wrapped, x), want);
                prop_assert_eq!(engine.extend(&p.query, &p.target, dense, x), want);
            }
        }
    }

    /// Property 1, backend level: the CPU pool and the simulated-GPU
    /// executor produce the pre-profile results whether the DNA scheme
    /// arrives as `Scoring` or as a dense matrix.
    #[test]
    fn dna_backends_match_across_profile_spellings(
        seed in 0u64..1_000_000,
        n in 1usize..24,
        x in 5i32..150,
    ) {
        let pairs = PairSet::generate_with_lengths(n, 0.15, 200, 1500, seed).pairs;
        let scoring = Scoring::default();
        let dense = ScoreProfile::Matrix(SubstMatrix::match_mismatch(
            Alphabet::Dna,
            scoring.match_score,
            scoring.mismatch,
            scoring.gap,
        ));
        let legacy = XDropCpuAligner::new(2, scoring, x, Engine::Simd);
        let (want, _) = legacy.align_block(&pairs);
        let spelled = XDropCpuAligner::new(2, dense, x, Engine::Simd);
        let (got, _) = spelled.align_block(&pairs);
        prop_assert_eq!(&got, &want, "dense DNA matrix diverged on the CPU pool");
        let mut cfg = LoganConfig::with_x(x);
        cfg.profile = dense;
        let gpu = LoganExecutor::new(DeviceSpec::v100(), cfg);
        let (gpu_got, _) = gpu.align_block(&pairs);
        prop_assert_eq!(&gpu_got, &want, "dense DNA matrix diverged on the executor");
    }

    /// Property 2: scalar and SIMD are bit-identical under BLOSUM62 for
    /// arbitrary (unrelated and homologous) proteins and X values.
    #[test]
    fn blosum_engines_agree_across_seeds(
        seed in 0u64..1_000_000,
        n in 1usize..500,
        x in 0i32..400,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let p = ScoreProfile::blosum62(-6);
        let q = random_protein(n, &mut rng);
        for t in [random_protein(n, &mut rng), mutate(&q, 0.2, &mut rng)] {
            prop_assert_eq!(
                Engine::Simd.extend(&q, &t, p, x),
                Engine::Scalar.extend(&q, &t, p, x)
            );
        }
    }
}

/// Property 2 with the fallback accounted: lengths straddle the i16
/// eligibility boundary (⌊32767 / 11⌋ = 2978 aa at BLOSUM62's max
/// score — PR 10 widened the window from the conservative
/// ⌊16383 / 11⌋ = 1489 aa), so this provably exercises the vector
/// kernel on the short pairs *and* the scalar fallback on the long
/// ones — and both classes stay bit-identical to the scalar reference.
#[test]
fn blosum_fallback_boundary_is_exercised_and_identical() {
    let p = ScoreProfile::blosum62(-6);
    let x = 80;
    let mut rng = StdRng::seed_from_u64(404);
    let (mut eligible, mut fallback) = (0usize, 0usize);
    for len in [40, 400, 1489, 2900, 2978, 2979, 3100, 4400] {
        let q = random_protein(len, &mut rng);
        let t = mutate(&q, 0.15, &mut rng);
        if simd_eligible(&q, &t, p, x) {
            eligible += 1;
        } else {
            fallback += 1;
        }
        assert_eq!(
            Engine::Simd.extend(&q, &t, p, x),
            Engine::Scalar.extend(&q, &t, p, x),
            "len {len}"
        );
    }
    assert!(eligible >= 3, "the sweep must hit the vector kernel");
    assert!(fallback >= 3, "the sweep must hit the scalar fallback");
    // The boundary itself sits where the widened window predicts —
    // and the old conservative boundary is now well inside it.
    let at = random_protein(2978, &mut rng);
    let over = random_protein(2979, &mut rng);
    assert!(simd_eligible(&at, &at, p, 0));
    assert!(!simd_eligible(&over, &over, p, 0));
    let old_boundary = random_protein(1490, &mut rng);
    assert!(simd_eligible(&old_boundary, &old_boundary, p, 0));
}

/// Property 3a: translation round-trips through the reverse complement
/// (frame −k of x equals frame +k of rc(x)), and every segment is
/// stop-free by construction — verified against a direct re-translation.
#[test]
fn six_frame_round_trip_and_stop_segmentation() {
    let mut rng = StdRng::seed_from_u64(77);
    for _ in 0..20 {
        let n = 30 + rng.gen_range(0..300usize);
        let dna = Seq::from_codes(
            (0..n).map(|_| rng.gen_range(0..4u8)).collect(),
            Alphabet::Dna,
        );
        let rc = dna.reverse_complement();
        for offset in 0..3u8 {
            // Compare (offset, peptide) pairs: the two spellings differ
            // only in the frame's `reverse` flag.
            let via_rev: Vec<_> = translate_frame(
                &dna,
                Frame {
                    reverse: true,
                    offset,
                },
            )
            .into_iter()
            .map(|s| (s.aa_offset, s.seq))
            .collect();
            let via_fwd: Vec<_> = translate_frame(
                &rc,
                Frame {
                    reverse: false,
                    offset,
                },
            )
            .into_iter()
            .map(|s| (s.aa_offset, s.seq))
            .collect();
            assert_eq!(via_rev, via_fwd, "strand round-trip");
        }
        let segs = six_frame_segments(&dna);
        for seg in &segs {
            assert!(!seg.seq.is_empty(), "empty segments are never emitted");
            assert_eq!(seg.seq.alphabet(), Alphabet::Protein);
        }
        // Segments of one frame are disjoint, ordered, and separated by
        // at least one stop codon.
        for frame in Frame::ALL {
            let of_frame: Vec<_> = segs.iter().filter(|s| s.frame == frame).collect();
            for w in of_frame.windows(2) {
                assert!(
                    w[1].aa_offset > w[0].aa_offset + w[0].seq.len(),
                    "adjacent segments must be separated by a stop"
                );
            }
        }
    }
}

/// Property 3b, end to end: a peptide encoded into DNA (with flanking
/// stop codons) is recovered by six-frame search, and extending from
/// within its segment scores exactly what the direct protein-level
/// extension scores.
#[test]
fn translated_search_recovers_encoded_peptide_with_exact_score() {
    // Codon table rows for an arbitrary (deterministic) codon choice.
    const CODON_TABLE: &[u8; 64] =
        b"KNKNTTTTRSRSIIMIQHQHPPPPRRRRLLLLEDEDAAAAGGGGVVVV*Y*YSSSS*CWCLFLF";
    let mut rng = StdRng::seed_from_u64(5150);
    let peptide = random_protein(120, &mut rng);
    let mut dna_codes: Vec<u8> = vec![3, 0, 0]; // TAA: leading stop
    for &aa in peptide.as_slice() {
        let ascii = Alphabet::Protein.to_ascii(aa);
        let idx = CODON_TABLE
            .iter()
            .position(|&c| c == ascii)
            .expect("every amino acid has a codon");
        dna_codes.extend([(idx / 16) as u8, ((idx / 4) % 4) as u8, (idx % 4) as u8]);
    }
    dna_codes.extend([3, 2, 0]); // TGA: trailing stop
    let dna = Seq::from_codes(dna_codes, Alphabet::Dna);

    // The peptide shows up as one stop-free +1 segment.
    let segs = six_frame_segments(&dna);
    let hit = segs
        .iter()
        .find(|s| s.seq == peptide)
        .expect("the encoded peptide must appear among the six-frame segments");
    assert_eq!(
        hit.frame,
        Frame {
            reverse: false,
            offset: 0
        }
    );
    assert_eq!(
        hit.aa_offset, 1,
        "the leading stop occupies frame position 0"
    );

    // Aligning the recovered segment against a mutated target scores
    // exactly what the direct protein-level extension scores.
    let target = mutate(&peptide, 0.2, &mut rng);
    let p = ScoreProfile::blosum62(-6);
    for engine in [Engine::Scalar, Engine::Simd] {
        assert_eq!(
            engine.extend(&hit.seq, &target, p, 60),
            engine.extend(&peptide, &target, p, 60),
            "the segment is the peptide — scores must match exactly"
        );
    }
}
