//! Offline, API-compatible subset of
//! [`serde`](https://crates.io/crates/serde), vendored so the workspace
//! builds without a crates.io mirror.
//!
//! Instead of upstream's visitor-based `Serializer`/`Deserializer`
//! machinery, this subset works through one concrete tree:
//! [`Serialize::to_value`] produces a [`Value`], `serde_json` (the
//! sibling stub) renders and parses that tree as JSON text, and
//! [`Deserialize::from_value`] rebuilds typed data from it. The
//! `#[derive(Serialize, Deserialize)]` macros re-exported from
//! `serde_derive` understand the `#[serde(skip)]` field attribute used in
//! this workspace; skipped fields deserialize to `Default::default()`.
//!
//! Deserialization is deliberately lenient where the tree is
//! unambiguous: integer [`Value`]s coerce into float fields (the JSON
//! writer prints `3.0` for whole floats, but hand-written inputs may
//! not), and a missing struct field reads as [`Value::Null`] so that
//! `Option` fields added after an artifact was written deserialize to
//! `None` instead of failing.

pub use serde_derive::{Deserialize, Serialize};

/// A serialized tree, the single intermediate representation of this
/// serde subset (what upstream calls `serde_json::Value`).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer.
    U64(u64),
    /// Floating point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Value>),
    /// Object; insertion-ordered so output is deterministic.
    Map(Vec<(String, Value)>),
}

/// Types that can be turned into a [`Value`] tree.
pub trait Serialize {
    /// Serialize `self` into the intermediate tree.
    fn to_value(&self) -> Value;
}

/// Error produced when a [`Value`] tree does not match the shape the
/// target type expects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeserializeError {
    msg: String,
}

impl DeserializeError {
    /// Build an error with a human-readable message.
    pub fn new(msg: impl Into<String>) -> DeserializeError {
        DeserializeError { msg: msg.into() }
    }

    /// Convenience for "expected X, found Y" mismatches.
    pub fn expected(what: &str, found: &Value) -> DeserializeError {
        let kind = match found {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) => "integer",
            Value::F64(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "array",
            Value::Map(_) => "object",
        };
        DeserializeError::new(format!("expected {what}, found {kind}"))
    }
}

impl std::fmt::Display for DeserializeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeserializeError {}

/// Types that can be rebuilt from a [`Value`] tree (the inverse of
/// [`Serialize::to_value`], used by `serde_json::from_str`).
pub trait Deserialize: Sized {
    /// Rebuild `Self` from the intermediate tree.
    fn from_value(v: &Value) -> Result<Self, DeserializeError>;
}

/// The shared `Null` used for absent struct fields.
static NULL: Value = Value::Null;

/// Look up a struct field in a serialized map; absent fields read as
/// [`Value::Null`] (so `Option` fields tolerate older artifacts).
pub fn field<'a>(entries: &'a [(String, Value)], name: &str) -> &'a Value {
    entries
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .unwrap_or(&NULL)
}

/// Annotate a field/variant deserialization error with its location —
/// used by the derive macro so mismatch reports name the path.
pub fn context<T>(
    r: Result<T, DeserializeError>,
    what: &'static str,
) -> Result<T, DeserializeError> {
    r.map_err(|e| DeserializeError::new(format!("{what}: {e}")))
}

macro_rules! impl_deserialize_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeserializeError> {
                match *v {
                    Value::I64(n) => <$t>::try_from(n)
                        .map_err(|_| DeserializeError::new(format!(
                            "integer {n} out of range for {}", stringify!($t)))),
                    Value::U64(n) => <$t>::try_from(n)
                        .map_err(|_| DeserializeError::new(format!(
                            "integer {n} out of range for {}", stringify!($t)))),
                    _ => Err(DeserializeError::expected(stringify!($t), v)),
                }
            }
        }
    )*};
}

impl_deserialize_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeserializeError> {
        match *v {
            Value::F64(x) => Ok(x),
            // Integer trees coerce: the JSON grammar does not distinguish
            // `3` from `3.0` semantically.
            Value::I64(n) => Ok(n as f64),
            Value::U64(n) => Ok(n as f64),
            _ => Err(DeserializeError::expected("f64", v)),
        }
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeserializeError> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeserializeError> {
        match *v {
            Value::Bool(b) => Ok(b),
            _ => Err(DeserializeError::expected("bool", v)),
        }
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeserializeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeserializeError::expected("string", v)),
        }
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeserializeError> {
        match v {
            Value::Str(s) => {
                let mut chars = s.chars();
                match (chars.next(), chars.next()) {
                    (Some(c), None) => Ok(c),
                    _ => Err(DeserializeError::new(format!(
                        "expected single-character string, found {s:?}"
                    ))),
                }
            }
            _ => Err(DeserializeError::expected("char", v)),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeserializeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeserializeError> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            _ => Err(DeserializeError::expected("array", v)),
        }
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeserializeError> {
        let items = Vec::<T>::from_value(v)?;
        let len = items.len();
        items.try_into().map_err(|_| {
            DeserializeError::new(format!("expected array of length {N}, found {len}"))
        })
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeserializeError> {
        T::from_value(v).map(Box::new)
    }
}

impl Deserialize for std::time::Duration {
    fn from_value(v: &Value) -> Result<Self, DeserializeError> {
        let secs =
            f64::from_value(v).map_err(|_| DeserializeError::expected("duration in seconds", v))?;
        // try_from_secs_f64 rejects negative, non-finite *and*
        // overflowing values — from_secs_f64 would panic on e.g. 1e20,
        // turning a corrupt artifact into a process abort.
        std::time::Duration::try_from_secs_f64(secs)
            .map_err(|e| DeserializeError::new(format!("invalid duration seconds {secs}: {e}")))
    }
}

macro_rules! impl_deserialize_tuple {
    ($(($($name:ident : $idx:tt),+ ; $len:expr)),+ $(,)?) => {$(
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeserializeError> {
                match v {
                    Value::Seq(items) if items.len() == $len => {
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    Value::Seq(items) => Err(DeserializeError::new(format!(
                        "expected tuple of length {}, found {}", $len, items.len()))),
                    _ => Err(DeserializeError::expected("tuple (array)", v)),
                }
            }
        }
    )+};
}

impl_deserialize_tuple!(
    (A: 0; 1),
    (A: 0, B: 1; 2),
    (A: 0, B: 1, C: 2; 3),
    (A: 0, B: 1, C: 2, D: 3; 4),
);

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! impl_serialize_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::I64(*self as i64) }
        }
    )*};
}

macro_rules! impl_serialize_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
    )*};
}

impl_serialize_signed!(i8, i16, i32, i64, isize);
impl_serialize_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for std::time::Duration {
    fn to_value(&self) -> Value {
        Value::F64(self.as_secs_f64())
    }
}

macro_rules! impl_serialize_tuple {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
    )+};
}

impl_serialize_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
);

impl<K: std::fmt::Display, V: Serialize, S> Serialize for std::collections::HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<K: std::fmt::Display, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::{Serialize, Value};

    #[test]
    fn primitives() {
        assert_eq!(3u32.to_value(), Value::U64(3));
        assert_eq!((-3i32).to_value(), Value::I64(-3));
        assert_eq!(true.to_value(), Value::Bool(true));
        assert_eq!("hi".to_value(), Value::Str("hi".into()));
        assert_eq!(Option::<u8>::None.to_value(), Value::Null);
    }

    #[test]
    fn deserialize_primitives_and_containers() {
        use super::Deserialize;
        assert_eq!(u32::from_value(&Value::U64(7)).unwrap(), 7);
        assert_eq!(i32::from_value(&Value::I64(-7)).unwrap(), -7);
        assert_eq!(i64::from_value(&Value::U64(7)).unwrap(), 7);
        assert!(u8::from_value(&Value::U64(300)).is_err(), "range checked");
        assert!(u32::from_value(&Value::I64(-1)).is_err());
        assert_eq!(f64::from_value(&Value::U64(3)).unwrap(), 3.0);
        assert_eq!(f64::from_value(&Value::F64(2.5)).unwrap(), 2.5);
        assert!(bool::from_value(&Value::Bool(true)).unwrap());
        assert_eq!(
            String::from_value(&Value::Str("x".into())).unwrap(),
            "x".to_string()
        );
        assert_eq!(
            Option::<u8>::from_value(&Value::Null).unwrap(),
            None,
            "null is None"
        );
        assert_eq!(Option::<u8>::from_value(&Value::U64(3)).unwrap(), Some(3));
        assert_eq!(
            Vec::<u8>::from_value(&Value::Seq(vec![Value::U64(1), Value::U64(2)])).unwrap(),
            vec![1, 2]
        );
        assert_eq!(
            <[u8; 2]>::from_value(&Value::Seq(vec![Value::U64(1), Value::U64(2)])).unwrap(),
            [1, 2]
        );
        assert_eq!(
            <(u8, bool)>::from_value(&Value::Seq(vec![Value::U64(1), Value::Bool(false)])).unwrap(),
            (1, false)
        );
    }

    #[test]
    fn duration_round_trips_as_float_seconds() {
        use super::{Deserialize, Serialize};
        let d = std::time::Duration::from_micros(1_234_567);
        let v = d.to_value();
        match v {
            Value::F64(secs) => assert!((secs - 1.234567).abs() < 1e-12),
            other => panic!("expected float seconds, got {other:?}"),
        }
        let back = std::time::Duration::from_value(&v).unwrap();
        assert_eq!(back, d, "nanosecond-rounding round trip");
        assert!(std::time::Duration::from_value(&Value::F64(-1.0)).is_err());
        assert!(
            std::time::Duration::from_value(&Value::F64(1e20)).is_err(),
            "overflow must be an Err, not a panic"
        );
        // Integer seconds coerce (hand-written JSON without a dot).
        assert_eq!(
            std::time::Duration::from_value(&Value::U64(3)).unwrap(),
            std::time::Duration::from_secs(3)
        );
    }

    #[test]
    fn missing_struct_fields_read_as_null() {
        let entries = vec![("a".to_string(), Value::U64(1))];
        assert_eq!(super::field(&entries, "a"), &Value::U64(1));
        assert_eq!(super::field(&entries, "missing"), &Value::Null);
    }

    #[test]
    fn containers() {
        assert_eq!(
            vec![1u8, 2].to_value(),
            Value::Seq(vec![Value::U64(1), Value::U64(2)])
        );
        assert_eq!(
            (1u8, "x").to_value(),
            Value::Seq(vec![Value::U64(1), Value::Str("x".into())])
        );
    }
}
