//! The LOGAN X-drop GPU kernel (paper §IV-A, Algorithms 1–2).
//!
//! One block per alignment (inter-sequence parallelism); inside a block,
//! each anti-diagonal is computed by a grid-stride loop whose segments
//! are as wide as the block (intra-sequence parallelism, Fig. 3); the
//! anti-diagonal maximum is found with an in-warp shuffle reduction; the
//! bounds update runs on thread 0. Only three anti-diagonals are live,
//! stored in HBM (or in shared memory under the §IV-B ablation).
//!
//! The kernel's *results* are computed exactly — cell by cell, with the
//! same recurrence, pruning, trimming, tie-breaks and termination as the
//! scalar reference [`logan_align::xdrop_extend`]; the property tests in
//! this module assert bit-equality. Its *costs* are accounted through
//! [`BlockCtx`] and the constants in [`crate::calibration`].

use crate::calibration::*;
use logan_align::simd::{simd_eligible, SimdState, SimdStep};
use logan_align::workspace::{with_thread_workspace, ScalarRings};
use logan_align::{AlignWorkspace, Engine, ExtensionResult, NEG_INF};
use logan_gpusim::{AccessPattern, BlockCtx, BlockKernel};
use logan_seq::{ScoreProfile, Seq};

/// One extension problem: align a prefix of `query` against a prefix of
/// `target` (both already oriented by the host — left extensions arrive
/// reversed).
#[derive(Debug, Clone)]
pub struct ExtensionJob {
    /// Query sequence (vertical axis).
    pub query: Seq,
    /// Target sequence (horizontal axis).
    pub target: Seq,
}

/// Per-launch execution policy resolved by the host executor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelPolicy {
    /// Threads per block (the executor sets this ∝ X, §IV-B).
    pub threads: usize,
    /// Whether the host reversed the target's memory layout so both
    /// sequences stream forward (Fig. 6). Off = strided ablation.
    pub reversed_layout: bool,
    /// Keep the three anti-diagonals in shared memory instead of HBM
    /// (the §IV-B ablation that caps SM residency).
    pub antidiag_in_shared: bool,
    /// Fraction of streaming anti-diagonal/character traffic charged to
    /// HBM (the remainder hits L2); the executor derives it from the
    /// estimated hot working set across resident blocks.
    pub hbm_charge_fraction: f64,
    /// Which host engine computes the block's results. Results and
    /// accounted costs are identical across every engine (asserted by
    /// the engine-equivalence tests); the choice only changes how fast
    /// the simulation itself runs on the host. The SIMD tiers
    /// ([`Engine::Simd`] / [`Engine::I8`] / [`Engine::Adaptive`]) all
    /// drive the same per-anti-diagonal stepper accounting, so the
    /// simulated device sees one int16 kernel regardless of which host
    /// lane width computed it.
    pub engine: Engine,
}

impl KernelPolicy {
    /// Policy with the paper's defaults for a given thread count.
    pub fn new(threads: usize) -> KernelPolicy {
        KernelPolicy {
            threads,
            reversed_layout: true,
            antidiag_in_shared: false,
            hbm_charge_fraction: 0.0,
            engine: Engine::Scalar,
        }
    }
}

/// The kernel: a batch of jobs, one block each.
pub struct LoganKernel<'a> {
    /// The extension problems, indexed by block id.
    pub jobs: &'a [ExtensionJob],
    /// Substitution model with linear gaps: the DNA match/mismatch fast
    /// path or a dense matrix (e.g. BLOSUM62 for translated search).
    pub profile: ScoreProfile,
    /// X-drop threshold.
    pub x: i32,
    /// Execution policy.
    pub policy: KernelPolicy,
}

impl BlockKernel for LoganKernel<'_> {
    type Output = ExtensionResult;

    fn run_block(&self, ctx: &mut BlockCtx, block_id: usize) -> ExtensionResult {
        let job = &self.jobs[block_id];
        // One reused workspace per host worker thread: the simulated
        // device allocates its anti-diagonal buffers once (as the real
        // kernel does in HBM), not once per block. Accounted SIMT costs
        // are independent of the workspace, so this is purely a host
        // wall-clock optimisation.
        with_thread_workspace(|ws| match self.policy.engine {
            Engine::Scalar => logan_block_extend_with(
                ctx,
                &job.query,
                &job.target,
                self.profile,
                self.x,
                &self.policy,
                ws,
            ),
            // All SIMD tiers route to the i16 stepper path: per-anti-
            // diagonal stats (and therefore every accounted SIMT cost)
            // are tier-invariant, so the host's narrower-lane speedups
            // are a CPU-backend concern, not a simulated-kernel one.
            Engine::Simd | Engine::I8 | Engine::Adaptive => logan_block_extend_simd_with(
                ctx,
                &job.query,
                &job.target,
                self.profile,
                self.x,
                &self.policy,
                ws,
            ),
        })
    }
}

/// Per-block cost constants and one-time charges resolved from the
/// policy — shared by the scalar and SIMD block paths so the two
/// engines account *identical* SIMT costs (asserted by the
/// engine-equivalence tests).
struct BlockCosts {
    instr_per_cell: u32,
    iter_stall: u64,
    char_pattern: AccessPattern,
}

/// Book the kernel prologue: anti-diagonal buffer allocation (shared or
/// HBM), reduction scratch, and the cold sequence load.
fn block_prologue(ctx: &mut BlockCtx, m: usize, n: usize, policy: &KernelPolicy) -> BlockCosts {
    let cap = m.min(n) + 1;
    // Anti-diagonal storage: three buffers of capacity `cap`.
    if policy.antidiag_in_shared {
        ctx.alloc_shared(3 * cap * 4)
            .expect("anti-diagonals exceed shared memory: the shared-memory ablation only supports short reads");
    } else {
        // Cold allocation traffic: the buffers are written once up front.
        ctx.hbm_write(3 * cap as u64 * 4, AccessPattern::Coalesced, 4);
    }
    // Reduction scratch: one (value, index) partial per warp.
    ctx.alloc_shared(ctx.warps() * 8)
        .expect("reduction scratch always fits");
    let char_pattern = if policy.reversed_layout {
        AccessPattern::Coalesced
    } else {
        AccessPattern::Strided
    };
    // Cold sequence load (both sequences stream in once; reuse is L2's
    // job and is charged via hbm_charge_fraction below). The query
    // streams forward; the target's pattern depends on whether the host
    // reversed its layout (Fig. 6) — an un-reversed target is walked
    // backwards along every anti-diagonal and pays per-element sectors.
    ctx.hbm_read(m as u64, AccessPattern::Coalesced, 1);
    ctx.hbm_read(n as u64, char_pattern, 1);
    BlockCosts {
        instr_per_cell: if policy.reversed_layout {
            LOGAN_INSTR_PER_CELL
        } else {
            LOGAN_INSTR_PER_CELL + STRIDED_REPLAY_INSTR
        },
        iter_stall: if policy.antidiag_in_shared {
            ITER_STALL_CYCLES_SHARED
        } else {
            ITER_STALL_CYCLES_HBM
        },
        char_pattern,
    }
}

/// Streaming traffic for one anti-diagonal: two reads + one write of
/// score words, plus one character of each sequence per cell. Only the
/// L2-spilled fraction reaches HBM.
fn charge_streaming(ctx: &mut BlockCtx, policy: &KernelPolicy, width: usize, costs: &BlockCosts) {
    let f = policy.hbm_charge_fraction;
    if !policy.antidiag_in_shared && f > 0.0 {
        let score_read = (2 * width * 4) as f64 * f;
        let score_write = (width * 4) as f64 * f;
        ctx.hbm_read(score_read as u64, AccessPattern::Coalesced, 4);
        ctx.hbm_write(score_write as u64, AccessPattern::Coalesced, 4);
    }
    if f > 0.0 {
        let q_bytes = (width as f64 * f) as u64;
        ctx.hbm_read(q_bytes, AccessPattern::Coalesced, 1);
        ctx.hbm_read(q_bytes, costs.char_pattern, 1);
    }
}

/// Execute one X-drop extension inside a block context, accounting SIMT
/// costs as it goes. Mirrors `logan_align::xdrop_extend` statement for
/// statement; any divergence is a bug caught by the equivalence tests.
///
/// Thin allocating wrapper over [`logan_block_extend_with`]; the
/// executor path reuses a per-thread workspace instead.
pub fn logan_block_extend(
    ctx: &mut BlockCtx,
    query: &Seq,
    target: &Seq,
    profile: impl Into<ScoreProfile>,
    x: i32,
    policy: &KernelPolicy,
) -> ExtensionResult {
    logan_block_extend_with(
        ctx,
        query,
        target,
        profile,
        x,
        policy,
        &mut AlignWorkspace::new(),
    )
}

/// [`logan_block_extend`] computing into caller-owned scratch: the
/// three anti-diagonal rings and the per-lane reduction scratch come
/// from `ws` — the host mirror of the kernel's preallocated HBM
/// buffers. Accounted SIMT costs do not depend on the workspace.
#[allow(clippy::too_many_arguments)]
pub fn logan_block_extend_with(
    ctx: &mut BlockCtx,
    query: &Seq,
    target: &Seq,
    profile: impl Into<ScoreProfile>,
    x: i32,
    policy: &KernelPolicy,
    ws: &mut AlignWorkspace,
) -> ExtensionResult {
    // Dispatch on the substitution model once, outside the cell loop:
    // each arm monomorphizes the block core with an inlined scorer, so
    // the DNA arm compiles to the exact pre-profile loop.
    match profile.into() {
        ScoreProfile::MatchMismatch(s) => block_core(
            ctx,
            query,
            target,
            |a, b| s.substitution(a == b),
            s.gap,
            x,
            policy,
            ws,
        ),
        ScoreProfile::Matrix(m) => block_core(
            ctx,
            query,
            target,
            |a, b| m.score(a, b),
            m.gap,
            x,
            policy,
            ws,
        ),
    }
}

/// The scalar block body, generic over the substitution scorer.
#[allow(clippy::too_many_arguments)]
fn block_core(
    ctx: &mut BlockCtx,
    query: &Seq,
    target: &Seq,
    sub: impl Fn(u8, u8) -> i32,
    gap: i32,
    x: i32,
    policy: &KernelPolicy,
    ws: &mut AlignWorkspace,
) -> ExtensionResult {
    assert!(x >= 0, "X-drop parameter must be non-negative");
    let m = query.len();
    let n = target.len();
    if m == 0 || n == 0 {
        return ExtensionResult::zero();
    }
    let q = query.as_slice();
    let t = target.as_slice();
    let threads = ctx.threads();
    let costs = block_prologue(ctx, m, n, policy);

    let mut best: i32 = 0;
    let mut best_i: usize = 0;
    let mut best_d: usize = 0;
    let mut cells: u64 = 0;
    let mut iterations: u64 = 0;
    let mut max_width: usize = 1;
    let mut dropped = false;

    ws.rings.reset();
    let ScalarRings { prev2, prev, cur } = &mut ws.rings;
    // Per-lane local maxima for the reduction, reused across iterations
    // (and across blocks, via the workspace).
    let lane_best = &mut ws.lanes;

    for d in 1..=(m + n) {
        let lo = prev.lo().max(d.saturating_sub(n));
        let hi = (prev.lo() + prev.live_len()).min(d).min(m);
        if lo > hi {
            break;
        }
        let width = hi - lo + 1;

        // --- Phase 1: grid-stride cell computation (Algorithm 2). ---
        let out = cur.begin(lo, width);
        lane_best.clear();
        lane_best.resize(width.min(threads), (NEG_INF, usize::MAX));
        let threshold = best - x;
        for (k, cell) in out.iter_mut().enumerate() {
            let i = lo + k;
            let j = d - i;
            let diag = if i >= 1 && j >= 1 {
                prev2.get(i - 1) + sub(q[i - 1], t[j - 1])
            } else {
                NEG_INF
            };
            let up = if i >= 1 {
                prev.get(i - 1) + gap
            } else {
                NEG_INF
            };
            let left = if j >= 1 { prev.get(i) + gap } else { NEG_INF };
            let mut val = diag.max(up).max(left);
            if val < threshold {
                val = NEG_INF;
            }
            *cell = val;
            // Thread k % threads keeps its running maximum in a register;
            // strictly-greater keeps the earliest (smallest i) per lane.
            let lane = k % threads;
            if val > lane_best[lane].0 {
                lane_best[lane] = (val, i);
            }
        }
        cells += width as u64;
        iterations += 1;
        ctx.record_iteration(width.min(threads));
        ctx.strided_loop(width, costs.instr_per_cell);
        charge_streaming(ctx, policy, width, &costs);
        ctx.sync_threads();

        // --- Phase 2: trim −∞ runs (thread 0, Algorithm 1 lines 10–15)
        // --- — offset moves only, no memmove.
        let computed = cur.computed();
        let (trim_front, trim_back) = match computed.iter().position(|&v| v > NEG_INF) {
            None => {
                ctx.thread0(BOUNDS_UPDATE_BASE_INSTR + TRIM_INSTR_PER_CELL * width as u32);
                dropped = true;
                break;
            }
            Some(kf) => {
                let kl = computed.iter().rposition(|&v| v > NEG_INF).unwrap();
                cur.trim(kf, kl);
                (kf, width - 1 - kl)
            }
        };
        ctx.thread0(
            BOUNDS_UPDATE_BASE_INSTR + TRIM_INSTR_PER_CELL * (trim_front + trim_back) as u32,
        );
        max_width = max_width.max(cur.live_len());

        // --- Phase 3: block-wide max reduction (in-warp shuffles). ---
        let live_lanes = width.min(threads);
        let (row_max, row_arg) = ctx.block_reduce_max_idx(&lane_best[..live_lanes]);
        if row_max > best {
            best = row_max;
            best_i = row_arg;
            best_d = d;
        }

        // Serial dependency to the next anti-diagonal.
        ctx.stall(costs.iter_stall);

        // Rotate buffers.
        std::mem::swap(prev2, prev);
        std::mem::swap(prev, cur);
    }

    ExtensionResult {
        score: best,
        query_end: best_i,
        target_end: best_d - best_i,
        cells,
        iterations,
        max_width,
        dropped,
    }
}

/// The [`Engine::Simd`]-dispatched block path: the per-cell values come
/// from the lane-parallel i16 stepper in `logan-align`, while every
/// SIMT cost is booked through the same helpers and in the same order
/// as [`logan_block_extend`]. Because the stepper reports the exact
/// per-anti-diagonal widths and trim counts — and the engines are
/// bit-identical — the accounted counters (and hence simulated time)
/// are equal between engines; only host wall-clock differs.
///
/// Falls back to [`logan_block_extend`] when the job is outside the
/// i16 kernel's exactness window (`logan_align::simd::simd_eligible`).
///
/// Thin allocating wrapper over [`logan_block_extend_simd_with`]; the
/// executor path reuses a per-thread workspace instead.
pub fn logan_block_extend_simd(
    ctx: &mut BlockCtx,
    query: &Seq,
    target: &Seq,
    profile: impl Into<ScoreProfile>,
    x: i32,
    policy: &KernelPolicy,
) -> ExtensionResult {
    logan_block_extend_simd_with(
        ctx,
        query,
        target,
        profile,
        x,
        policy,
        &mut AlignWorkspace::new(),
    )
}

/// [`logan_block_extend_simd`] computing into caller-owned scratch: the
/// i16 stepper borrows the workspace's SIMD buffers and the reduction
/// cost model its lane scratch. Accounted SIMT costs do not depend on
/// the workspace (asserted by the engine-equivalence tests).
#[allow(clippy::too_many_arguments)]
pub fn logan_block_extend_simd_with(
    ctx: &mut BlockCtx,
    query: &Seq,
    target: &Seq,
    profile: impl Into<ScoreProfile>,
    x: i32,
    policy: &KernelPolicy,
    ws: &mut AlignWorkspace,
) -> ExtensionResult {
    let profile = profile.into();
    if query.is_empty() || target.is_empty() || !simd_eligible(query, target, profile, x) {
        // Empty or ineligible job: the scalar path handles both (and
        // books nothing for empty jobs, same as this early return).
        return logan_block_extend_with(ctx, query, target, profile, x, policy, ws);
    }
    let mut state =
        SimdState::new(query, target, profile, x, &mut ws.simd).expect("eligibility checked above");
    let (m, n) = (query.len(), target.len());
    let threads = ctx.threads();
    let costs = block_prologue(ctx, m, n, policy);
    // Scratch handed to the reduction cost model. Its *cost* depends
    // only on the lane count; the stepper already performed the exact
    // max/argmax, so lane 0 carries the row maximum and the rest are
    // idle sentinels.
    let lane_vals = &mut ws.lanes;

    loop {
        match state.step() {
            SimdStep::Finished => break,
            SimdStep::Dropped { width } => {
                ctx.record_iteration(width.min(threads));
                ctx.strided_loop(width, costs.instr_per_cell);
                charge_streaming(ctx, policy, width, &costs);
                ctx.sync_threads();
                // Thread 0 scans the whole (dead) anti-diagonal before
                // concluding the drop, as in the scalar path.
                ctx.thread0(BOUNDS_UPDATE_BASE_INSTR + TRIM_INSTR_PER_CELL * width as u32);
                break;
            }
            SimdStep::Advanced(stats) => {
                ctx.record_iteration(stats.width.min(threads));
                ctx.strided_loop(stats.width, costs.instr_per_cell);
                charge_streaming(ctx, policy, stats.width, &costs);
                ctx.sync_threads();
                ctx.thread0(
                    BOUNDS_UPDATE_BASE_INSTR
                        + TRIM_INSTR_PER_CELL * (stats.trim_front + stats.trim_back) as u32,
                );
                let live_lanes = stats.width.min(threads);
                lane_vals.clear();
                lane_vals.resize(live_lanes, (NEG_INF, usize::MAX));
                lane_vals[0] = (stats.row_max, 0);
                ctx.block_reduce_max_idx(lane_vals);
                ctx.stall(costs.iter_stall);
            }
        }
    }
    state.into_result()
}

#[cfg(test)]
mod tests {
    use super::*;
    use logan_align::xdrop_extend;
    use logan_seq::readsim::{random_seq, PairSet};
    use logan_seq::{ErrorModel, ErrorProfile, Scoring};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ctx(threads: usize) -> BlockCtx {
        BlockCtx::new(threads, 32, 96 * 1024)
    }

    fn run(q: &Seq, t: &Seq, x: i32, threads: usize) -> ExtensionResult {
        let mut c = ctx(threads);
        logan_block_extend(
            &mut c,
            q,
            t,
            Scoring::default(),
            x,
            &KernelPolicy::new(threads),
        )
    }

    #[test]
    fn kernel_equals_reference_on_random_pairs() {
        let mut rng = StdRng::seed_from_u64(1);
        let model = ErrorModel::new(ErrorProfile::pacbio(0.15));
        for trial in 0..40 {
            let len = 50 + (trial * 13) % 400;
            let template = random_seq(len, &mut rng);
            let (a, _) = model.corrupt(&template, &mut rng);
            let (b, _) = model.corrupt(&template, &mut rng);
            for x in [5, 25, 100] {
                for threads in [32, 128, 1024] {
                    let gpu = run(&a, &b, x, threads);
                    let cpu = xdrop_extend(&a, &b, Scoring::default(), x);
                    assert_eq!(gpu, cpu, "trial {trial} x {x} threads {threads}");
                }
            }
        }
    }

    #[test]
    fn kernel_equals_reference_on_divergent_pairs() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..20 {
            let a = random_seq(200, &mut rng);
            let b = random_seq(220, &mut rng);
            let gpu = run(&a, &b, 20, 64);
            let cpu = xdrop_extend(&a, &b, Scoring::default(), 20);
            assert_eq!(gpu, cpu);
        }
    }

    #[test]
    fn kernel_counters_populated() {
        let mut rng = StdRng::seed_from_u64(3);
        let template = random_seq(500, &mut rng);
        let model = ErrorModel::new(ErrorProfile::pacbio(0.1));
        let (a, _) = model.corrupt(&template, &mut rng);
        let (b, _) = model.corrupt(&template, &mut rng);
        let mut c = ctx(128);
        let r = logan_block_extend(
            &mut c,
            &a,
            &b,
            Scoring::default(),
            50,
            &KernelPolicy::new(128),
        );
        assert!(c.counters.warp_instructions > 0);
        assert!(c.counters.iterations == r.iterations);
        assert!(c.counters.stall_cycles >= r.iterations * ITER_STALL_CYCLES_HBM);
        assert!(c.counters.hbm_read_bytes > 0, "cold sequence load counted");
        assert!(c.counters.barriers > 0);
        assert!(c.counters.thread_ops >= r.cells * LOGAN_INSTR_PER_CELL as u64);
    }

    #[test]
    fn simd_block_path_matches_scalar_results_and_counters() {
        let mut rng = StdRng::seed_from_u64(9);
        let model = ErrorModel::new(ErrorProfile::pacbio(0.15));
        for trial in 0..10 {
            let len = 60 + trial * 47;
            let template = random_seq(len, &mut rng);
            let (a, _) = model.corrupt(&template, &mut rng);
            let (b, _) = model.corrupt(&template, &mut rng);
            for x in [0, 10, 100] {
                for threads in [32, 256] {
                    let mut pol = KernelPolicy::new(threads);
                    pol.hbm_charge_fraction = 0.5;
                    let mut c_scalar = ctx(threads);
                    let r_scalar =
                        logan_block_extend(&mut c_scalar, &a, &b, Scoring::default(), x, &pol);
                    pol.engine = Engine::Simd;
                    let mut c_simd = ctx(threads);
                    let r_simd =
                        logan_block_extend_simd(&mut c_simd, &a, &b, Scoring::default(), x, &pol);
                    assert_eq!(r_simd, r_scalar, "results: trial {trial} x {x} t {threads}");
                    assert_eq!(
                        c_simd.counters, c_scalar.counters,
                        "counters: trial {trial} x {x} t {threads}"
                    );
                }
            }
        }
    }

    #[test]
    fn matrix_profile_block_path_matches_reference_and_counters() {
        use logan_seq::{Alphabet, ScoreProfile};
        use rand::Rng;
        let p = ScoreProfile::blosum62(-6);
        let mut rng = StdRng::seed_from_u64(31);
        for trial in 0..8 {
            let n = 40 + trial * 37;
            let a = Seq::from_codes(
                (0..n).map(|_| rng.gen_range(0..20u8)).collect(),
                Alphabet::Protein,
            );
            let mut hom = a.as_slice().to_vec();
            for c in hom.iter_mut() {
                if rng.gen_bool(0.2) {
                    *c = rng.gen_range(0..20u8);
                }
            }
            let b = Seq::from_codes(hom, Alphabet::Protein);
            for x in [10, 60] {
                let pol = KernelPolicy::new(64);
                let mut c1 = ctx(64);
                let r1 = logan_block_extend(&mut c1, &a, &b, p, x, &pol);
                let want = xdrop_extend(&a, &b, p, x);
                assert_eq!(r1, want, "block vs reference, trial {trial} x {x}");
                let mut pol_simd = pol;
                pol_simd.engine = Engine::Simd;
                let mut c2 = ctx(64);
                let r2 = logan_block_extend_simd(&mut c2, &a, &b, p, x, &pol_simd);
                assert_eq!(r2, r1, "simd block path, trial {trial} x {x}");
                assert_eq!(c2.counters, c1.counters, "counters, trial {trial} x {x}");
            }
        }
    }

    #[test]
    fn simd_block_path_falls_back_when_ineligible() {
        // X beyond the i16 window: the SIMD path must defer to the
        // scalar block kernel (identical results and counters).
        let mut rng = StdRng::seed_from_u64(10);
        let a = random_seq(150, &mut rng);
        let b = random_seq(150, &mut rng);
        let x = i32::MAX / 4;
        let pol = KernelPolicy::new(64);
        let mut c1 = ctx(64);
        let r1 = logan_block_extend(&mut c1, &a, &b, Scoring::default(), x, &pol);
        let mut c2 = ctx(64);
        let r2 = logan_block_extend_simd(&mut c2, &a, &b, Scoring::default(), x, &pol);
        assert_eq!(r1, r2);
        assert_eq!(c1.counters, c2.counters);
    }

    #[test]
    fn kernel_dispatch_selects_engine() {
        let set = PairSet::generate_with_lengths(4, 0.15, 200, 400, 8);
        let jobs: Vec<ExtensionJob> = set
            .pairs
            .iter()
            .map(|p| ExtensionJob {
                query: p.query.clone(),
                target: p.target.clone(),
            })
            .collect();
        let mut pol = KernelPolicy::new(128);
        pol.engine = Engine::Simd;
        let kernel = LoganKernel {
            jobs: &jobs,
            profile: Scoring::default().into(),
            x: 50,
            policy: pol,
        };
        for (i, job) in jobs.iter().enumerate() {
            let mut c = ctx(128);
            let got = kernel.run_block(&mut c, i);
            let want = xdrop_extend(&job.query, &job.target, Scoring::default(), 50);
            assert_eq!(got, want, "job {i}");
        }
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let set = PairSet::generate_with_lengths(5, 0.15, 300, 500, 4);
        for p in &set.pairs {
            let base = run(&p.query, &p.target, 50, 32);
            for threads in [64, 256, 512, 1024] {
                assert_eq!(run(&p.query, &p.target, 50, threads), base);
            }
        }
    }

    #[test]
    fn strided_layout_costs_more() {
        let mut rng = StdRng::seed_from_u64(5);
        let template = random_seq(400, &mut rng);
        let model = ErrorModel::new(ErrorProfile::pacbio(0.12));
        let (a, _) = model.corrupt(&template, &mut rng);
        let (b, _) = model.corrupt(&template, &mut rng);

        let mut pol = KernelPolicy::new(128);
        pol.hbm_charge_fraction = 1.0;
        let mut c_rev = ctx(128);
        let r_rev = logan_block_extend(&mut c_rev, &a, &b, Scoring::default(), 50, &pol);

        pol.reversed_layout = false;
        let mut c_str = ctx(128);
        let r_str = logan_block_extend(&mut c_str, &a, &b, Scoring::default(), 50, &pol);

        assert_eq!(r_rev, r_str, "layout must not change results");
        assert!(
            c_str.counters.hbm_read_bytes > 2 * c_rev.counters.hbm_read_bytes,
            "strided char reads must inflate traffic"
        );
        assert!(c_str.counters.warp_instructions > c_rev.counters.warp_instructions);
    }

    #[test]
    fn shared_ablation_uses_shared_memory_and_less_stall() {
        let mut rng = StdRng::seed_from_u64(6);
        let a = random_seq(300, &mut rng);
        let b = random_seq(300, &mut rng);
        let mut pol = KernelPolicy::new(64);
        pol.antidiag_in_shared = true;
        let mut c = ctx(64);
        let r = logan_block_extend(&mut c, &a, &b, Scoring::default(), 30, &pol);
        assert!(c.shared_used() >= 3 * (a.len().min(b.len()) + 1) * 4);
        assert_eq!(
            c.counters.stall_cycles,
            r.iterations * ITER_STALL_CYCLES_SHARED
        );
    }

    #[test]
    fn empty_job_is_free() {
        let mut c = ctx(32);
        let r = logan_block_extend(
            &mut c,
            &Seq::new(),
            &random_seq(10, &mut StdRng::seed_from_u64(7)),
            Scoring::default(),
            10,
            &KernelPolicy::new(32),
        );
        assert_eq!(r, ExtensionResult::zero());
        assert_eq!(c.counters.warp_instructions, 0);
    }

    #[test]
    fn hbm_fraction_scales_traffic() {
        let mut rng = StdRng::seed_from_u64(8);
        let template = random_seq(600, &mut rng);
        let model = ErrorModel::new(ErrorProfile::pacbio(0.1));
        let (a, _) = model.corrupt(&template, &mut rng);
        let (b, _) = model.corrupt(&template, &mut rng);
        let traffic = |frac: f64| {
            let mut pol = KernelPolicy::new(128);
            pol.hbm_charge_fraction = frac;
            let mut c = ctx(128);
            logan_block_extend(&mut c, &a, &b, Scoring::default(), 100, &pol);
            c.counters.hbm_bytes()
        };
        let t0 = traffic(0.0);
        let t_half = traffic(0.5);
        let t1 = traffic(1.0);
        assert!(t0 < t_half && t_half < t1);
    }
}
