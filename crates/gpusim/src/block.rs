//! The block execution context: the CUDA-like API kernels are written
//! against.
//!
//! A kernel implements [`BlockKernel`]; the device runs `run_block` once
//! per block (in parallel on the host). Inside, the kernel does its real
//! computation with ordinary Rust and *accounts* the SIMT cost of each
//! phase through [`BlockCtx`]:
//!
//! * [`BlockCtx::strided_loop`] — a grid-stride loop over `items`
//!   elements (LOGAN's anti-diagonal segments, paper Fig. 3): charges
//!   `ceil(active/32)` warp instructions per instruction per round, so
//!   one active lane in a warp costs as much as thirty-two;
//! * [`BlockCtx::block_reduce_max_idx`] — the in-warp shuffle reduction
//!   LOGAN uses for the anti-diagonal maximum (§IV-A), with the partials
//!   staged through shared memory;
//! * [`BlockCtx::hbm_read`] / [`BlockCtx::hbm_write`] — effective DRAM
//!   traffic under the coalescing model;
//! * [`BlockCtx::sync_threads`], [`BlockCtx::thread0`],
//!   [`BlockCtx::alloc_shared`] — barriers, serial sections, shared
//!   memory reservations.

use crate::counters::BlockCounters;
use crate::mem::AccessPattern;

/// A kernel executed one block at a time.
pub trait BlockKernel: Sync {
    /// Per-block result returned to the host.
    type Output: Send;

    /// Execute one block. `block_id` plays the role of `blockIdx.x`.
    fn run_block(&self, ctx: &mut BlockCtx, block_id: usize) -> Self::Output;
}

/// Execution context of a single block.
#[derive(Debug, Clone)]
pub struct BlockCtx {
    threads: usize,
    warp_size: usize,
    shared_limit: usize,
    shared_used: usize,
    /// Cost and traffic accounting for this block.
    pub counters: BlockCounters,
}

/// Error raised when a block over-subscribes shared memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SharedMemExceeded {
    /// Bytes requested in the failing allocation.
    pub requested: usize,
    /// Per-block limit.
    pub limit: usize,
    /// Already reserved.
    pub used: usize,
}

impl std::fmt::Display for SharedMemExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "shared memory exceeded: requested {} with {} of {} used",
            self.requested, self.used, self.limit
        )
    }
}

impl std::error::Error for SharedMemExceeded {}

impl BlockCtx {
    /// Create a context for a block of `threads` threads.
    pub fn new(threads: usize, warp_size: usize, shared_limit: usize) -> BlockCtx {
        assert!(threads >= 1, "a block needs at least one thread");
        assert!(warp_size >= 1);
        BlockCtx {
            threads,
            warp_size,
            shared_limit,
            shared_used: 0,
            counters: BlockCounters::default(),
        }
    }

    /// Threads in this block (`blockDim.x`).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Warps in this block.
    pub fn warps(&self) -> usize {
        self.threads.div_ceil(self.warp_size)
    }

    /// Shared memory bytes reserved so far.
    pub fn shared_used(&self) -> usize {
        self.shared_used
    }

    /// Reserve `bytes` of shared memory for the block's lifetime.
    pub fn alloc_shared(&mut self, bytes: usize) -> Result<(), SharedMemExceeded> {
        if self.shared_used + bytes > self.shared_limit {
            return Err(SharedMemExceeded {
                requested: bytes,
                limit: self.shared_limit,
                used: self.shared_used,
            });
        }
        self.shared_used += bytes;
        Ok(())
    }

    /// Account a grid-stride loop over `items` elements, each costing
    /// `instr_per_item` thread-level instructions. Returns nothing — the
    /// caller performs the actual element computation itself (typically
    /// in one pass over a slice); this method only books the SIMT cost.
    pub fn strided_loop(&mut self, items: usize, instr_per_item: u32) {
        if items == 0 {
            return;
        }
        let t = self.threads;
        let mut remaining = items;
        while remaining > 0 {
            let active = remaining.min(t);
            let warps_issuing = active.div_ceil(self.warp_size) as u64;
            self.counters.warp_instructions += warps_issuing * instr_per_item as u64;
            self.counters.thread_ops += active as u64 * instr_per_item as u64;
            remaining -= active;
        }
    }

    /// Account a serial section executed by thread 0 while the rest of
    /// the block waits (e.g. LOGAN's anti-diagonal bounds update).
    pub fn thread0(&mut self, instructions: u32) {
        self.counters.warp_instructions += instructions as u64;
        self.counters.thread_ops += instructions as u64;
    }

    /// `__syncthreads()`: one barrier instruction per warp.
    pub fn sync_threads(&mut self) {
        self.counters.barriers += 1;
        self.counters.warp_instructions += self.warps() as u64;
    }

    /// Account an HBM read of `bytes` payload with the given pattern and
    /// element size.
    pub fn hbm_read(&mut self, bytes: u64, pattern: AccessPattern, element_size: u64) {
        self.counters.hbm_read_bytes += pattern.effective_bytes(bytes, element_size);
        self.counters.hbm_transactions += pattern.transactions(bytes, element_size);
    }

    /// Account an HBM write.
    pub fn hbm_write(&mut self, bytes: u64, pattern: AccessPattern, element_size: u64) {
        self.counters.hbm_write_bytes += pattern.effective_bytes(bytes, element_size);
        self.counters.hbm_transactions += pattern.transactions(bytes, element_size);
    }

    /// Record one parallel iteration (one anti-diagonal for LOGAN) with
    /// `active` threads doing useful work — feeds the adapted roofline
    /// ceiling (paper Eq. 1).
    pub fn record_iteration(&mut self, active: usize) {
        self.counters.iterations += 1;
        self.counters.active_thread_sum += active.min(self.threads) as u64;
    }

    /// Account `cycles` of serial dependency latency (e.g. the
    /// store→load round trip between consecutive anti-diagonals). Stalls
    /// do not consume issue slots — with enough resident blocks they
    /// hide behind other blocks' work — but they bound how fast a single
    /// block can finish.
    pub fn stall(&mut self, cycles: u64) {
        self.counters.stall_cycles += cycles;
    }

    /// Block-wide max reduction with index, implemented the way the
    /// LOGAN kernel does it: per-warp `__shfl_down` trees, partials in
    /// shared memory, final tree in the first warp. Ties break toward
    /// the smallest index, matching the scalar reference's first-maximum
    /// scan.
    ///
    /// `lane_values` holds one `(value, index)` per participating thread
    /// (at most [`BlockCtx::threads`]); the returned pair is exact.
    pub fn block_reduce_max_idx(&mut self, lane_values: &[(i32, usize)]) -> (i32, usize) {
        assert!(
            lane_values.len() <= self.threads,
            "more lane values than threads"
        );
        assert!(!lane_values.is_empty(), "reduction over no lanes");

        // Cost model: each shuffle level is shuffle + compare + select
        // (3 warp instructions) per active warp; log2(warp_size) levels.
        let levels = (usize::BITS - (self.warp_size - 1).leading_zeros()) as u64;
        let warps = lane_values.len().div_ceil(self.warp_size) as u64;
        self.counters.warp_instructions += warps * levels * 3;
        self.counters.thread_ops += lane_values.len() as u64 * levels * 3;
        // One partial (value + index = 8 bytes) per warp through shared.
        self.counters.shared_bytes += warps * 8;
        self.sync_threads();
        if warps > 1 {
            self.counters.warp_instructions += levels * 3;
            self.counters.shared_bytes += warps * 8;
            self.sync_threads();
        }

        // Exact result with min-index tie-break.
        let mut best = lane_values[0];
        for &(v, i) in &lane_values[1..] {
            if v > best.0 || (v == best.0 && i < best.1) {
                best = (v, i);
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(threads: usize) -> BlockCtx {
        BlockCtx::new(threads, 32, 48 * 1024)
    }

    #[test]
    fn strided_loop_full_warps() {
        let mut c = ctx(128);
        c.strided_loop(128, 10);
        // 128 items, 128 threads: one round, 4 warps, 10 instr each.
        assert_eq!(c.counters.warp_instructions, 40);
        assert_eq!(c.counters.thread_ops, 1280);
    }

    #[test]
    fn strided_loop_partial_warp_costs_full_warp() {
        let mut c = ctx(128);
        c.strided_loop(1, 10);
        // A single active lane still issues on a whole warp.
        assert_eq!(c.counters.warp_instructions, 10);
        assert_eq!(c.counters.thread_ops, 10);
    }

    #[test]
    fn strided_loop_multiple_rounds() {
        let mut c = ctx(64);
        c.strided_loop(130, 1);
        // Rounds: 64 + 64 + 2 → warps issuing 2 + 2 + 1 = 5.
        assert_eq!(c.counters.warp_instructions, 5);
        assert_eq!(c.counters.thread_ops, 130);
    }

    #[test]
    fn strided_loop_zero_items_free() {
        let mut c = ctx(64);
        c.strided_loop(0, 100);
        assert_eq!(c.counters.warp_instructions, 0);
    }

    #[test]
    fn serial_single_thread_is_expensive_per_item() {
        // The Table I "no parallelism" configuration: 1 thread.
        let mut serial = ctx(1);
        serial.strided_loop(1000, 10);
        let mut parallel = ctx(128);
        parallel.strided_loop(1000, 10);
        assert_eq!(serial.counters.warp_instructions, 10_000);
        // 1000 items / 128 threads: 8 rounds — 7 full (4 warps) + 1 with
        // 104 active (4 warps, last partially filled).
        assert_eq!(parallel.counters.warp_instructions, 320);
    }

    #[test]
    fn reduce_exact_and_tiebreak() {
        let mut c = ctx(64);
        let vals: Vec<(i32, usize)> = vec![(3, 5), (9, 7), (9, 2), (1, 0)];
        let (v, i) = c.block_reduce_max_idx(&vals);
        assert_eq!((v, i), (9, 2), "ties break toward the smaller index");
        assert!(c.counters.warp_instructions > 0);
        assert!(c.counters.barriers >= 1);
    }

    #[test]
    fn reduce_cost_scales_with_warps() {
        let mut small = ctx(32);
        let mut big = ctx(1024);
        let vals32: Vec<(i32, usize)> = (0..32).map(|i| (i as i32, i)).collect();
        let vals1024: Vec<(i32, usize)> = (0..1024).map(|i| (i as i32, i)).collect();
        small.block_reduce_max_idx(&vals32);
        big.block_reduce_max_idx(&vals1024);
        assert!(big.counters.warp_instructions > small.counters.warp_instructions);
        assert!(big.counters.shared_bytes > small.counters.shared_bytes);
    }

    #[test]
    #[should_panic(expected = "no lanes")]
    fn reduce_empty_panics() {
        let mut c = ctx(32);
        let _ = c.block_reduce_max_idx(&[]);
    }

    #[test]
    fn shared_memory_limit_enforced() {
        let mut c = ctx(128);
        assert!(c.alloc_shared(40 * 1024).is_ok());
        let err = c.alloc_shared(9 * 1024).unwrap_err();
        assert_eq!(err.used, 40 * 1024);
        assert!(err.to_string().contains("shared memory exceeded"));
        assert_eq!(c.shared_used(), 40 * 1024);
    }

    #[test]
    fn hbm_accounting_patterns() {
        let mut c = ctx(128);
        c.hbm_read(128, AccessPattern::Coalesced, 4);
        c.hbm_write(128, AccessPattern::Strided, 4);
        assert_eq!(c.counters.hbm_read_bytes, 128);
        assert_eq!(c.counters.hbm_write_bytes, 1024);
        assert_eq!(c.counters.hbm_transactions, 4 + 32);
    }

    #[test]
    fn sync_counts_warps() {
        let mut c = ctx(256);
        c.sync_threads();
        assert_eq!(c.counters.warp_instructions, 8);
        assert_eq!(c.counters.barriers, 1);
    }

    #[test]
    fn record_iteration_clamps_to_threads() {
        let mut c = ctx(64);
        c.record_iteration(1000);
        c.record_iteration(10);
        assert_eq!(c.counters.iterations, 2);
        assert_eq!(c.counters.active_thread_sum, 64 + 10);
    }
}
