//! Table III + Fig. 9 — LOGAN vs ksw2 across Z on the 100 K-pair set.
//!
//! ksw2 (minimap2's affine Z-drop kernel) is *executed* for real — its
//! seed-split extensions run on the host, the work is counted in cells,
//! and the Skylake platform model converts cells to the published
//! machine's seconds. The Z-derived band (see `logan_align::ksw2`) is
//! what makes its cost explode on well-matching pairs as Z grows, while
//! LOGAN's score-adaptive band saturates — the central contrast of the
//! paper's Fig. 9.

use logan_align::{ksw2_extend, CpuBatchAligner, Ksw2Params};
use logan_bench::{
    fmt_s, fmt_x, heading, project_gpu_time, project_multi_time, write_json, BenchScale, Table,
};
use logan_core::calibration::BALANCER_SETUP_S_PER_GPU;
use logan_core::{CpuPlatformModel, LoganConfig, LoganExecutor, MultiGpu};
use logan_gpusim::DeviceSpec;
use logan_seq::PairSet;
use serde::Serialize;

const ZS: [i32; 8] = [10, 20, 50, 100, 500, 1000, 2500, 5000];
// Paper Table III (seconds).
const PAPER_KSW2: [f64; 8] = [6.9, 7.0, 7.7, 10.4, 113.0, 209.5, 1235.8, 3213.1];
const PAPER_L1: [f64; 8] = [2.5, 3.8, 5.8, 7.3, 15.2, 20.4, 25.9, 27.2];
const PAPER_L8: [f64; 8] = [1.7, 1.8, 2.1, 2.4, 3.4, 4.3, 5.2, 5.2];

#[derive(Serialize)]
struct Row {
    z: i32,
    ksw2_cells_measured: u64,
    ksw2_s: f64,
    logan1_s: f64,
    logan8_s: f64,
    speedup1: f64,
    speedup8: f64,
    ksw2_gcups: f64,
    paper_ksw2_s: f64,
    paper_logan1_s: f64,
    paper_logan8_s: f64,
}

fn main() {
    let scale = BenchScale::from_env();
    let set = PairSet::generate(scale.pairs(), 0.15, scale.seed);
    let factor = scale.pair_factor();
    let skylake = CpuPlatformModel::skylake_ksw2();
    let host = CpuBatchAligner::new(std::thread::available_parallelism().map_or(4, |n| n.get()));
    let mut rows = Vec::new();

    for (i, &z) in ZS.iter().enumerate() {
        // ksw2: real execution, seed-split like the X-drop pipeline.
        let params = Ksw2Params::with_zdrop(z);
        let (cells_per_pair, _) = host.run_with(&set.pairs, |p| {
            let s = p.seed;
            let left = ksw2_extend(
                &p.query.subseq(0, s.qpos).reversed(),
                &p.target.subseq(0, s.tpos).reversed(),
                params,
            );
            let right = ksw2_extend(
                &p.query.subseq(s.qpos + s.len, p.query.len()),
                &p.target.subseq(s.tpos + s.len, p.target.len()),
                params,
            );
            left.cells + right.cells
        });
        let ksw2_cells: u64 = cells_per_pair.iter().sum();
        let ksw2_s = skylake.time_s((ksw2_cells as f64 * factor) as u64, 100_000);

        // LOGAN with X = Z (the paper benchmarks both at the same drop).
        let exec = LoganExecutor::new(DeviceSpec::v100(), LoganConfig::with_x(z));
        let (_, rep1) = exec.align_pairs(&set.pairs);
        let multi = MultiGpu::new(8, DeviceSpec::v100(), LoganConfig::with_x(z));
        let (_, rep8) = multi.align_pairs(&set.pairs);
        let logan1_s = project_gpu_time(&DeviceSpec::v100(), &rep1, factor);
        let logan8_s =
            project_multi_time(&DeviceSpec::v100(), &rep8, BALANCER_SETUP_S_PER_GPU, factor);

        rows.push(Row {
            z,
            ksw2_cells_measured: ksw2_cells,
            ksw2_s,
            logan1_s,
            logan8_s,
            speedup1: ksw2_s / logan1_s,
            speedup8: ksw2_s / logan8_s,
            ksw2_gcups: skylake.gcups((ksw2_cells as f64 * factor) as u64, 100_000),
            paper_ksw2_s: PAPER_KSW2[i],
            paper_logan1_s: PAPER_L1[i],
            paper_logan8_s: PAPER_L8[i],
        });
        eprintln!("[table3] z={z} done ({ksw2_cells} ksw2 cells measured)");
    }

    heading(format!(
        "Table III — LOGAN vs ksw2, 100K alignments \
         (measured {} pairs, projected x{:.0}; Skylake model: {})",
        set.len(),
        factor,
        skylake.name
    ));
    let mut t = Table::new(&[
        "X/Z",
        "ksw2 80t (s)",
        "LOGAN 1 GPU (s)",
        "LOGAN 8 GPU (s)",
        "speedup 1G",
        "speedup 8G",
        "ksw2 GCUPS",
        "paper (s/s/s)",
    ]);
    for r in &rows {
        t.row(vec![
            r.z.to_string(),
            fmt_s(r.ksw2_s),
            fmt_s(r.logan1_s),
            fmt_s(r.logan8_s),
            fmt_x(r.speedup1),
            fmt_x(r.speedup8),
            format!("{:.1}", r.ksw2_gcups),
            format!(
                "{}/{}/{}",
                fmt_s(r.paper_ksw2_s),
                fmt_s(r.paper_logan1_s),
                fmt_s(r.paper_logan8_s)
            ),
        ]);
    }
    println!("{}", t.render());

    heading("Fig. 9 — speed-up over ksw2 (log-log; series to plot)");
    let mut f = Table::new(&["X/Z", "1 GPU", "8 GPUs", "paper 1 GPU", "paper 8 GPUs"]);
    for (i, r) in rows.iter().enumerate() {
        f.row(vec![
            r.z.to_string(),
            fmt_x(r.speedup1),
            fmt_x(r.speedup8),
            fmt_x(PAPER_KSW2[i] / PAPER_L1[i]),
            fmt_x(PAPER_KSW2[i] / PAPER_L8[i]),
        ]);
    }
    println!("{}", f.render());
    write_json("table3_fig9", &rows);
}
