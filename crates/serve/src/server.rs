//! The threaded server: a long-running daemon over any
//! [`AlignBackend`]. One worker thread per backend lane pulls coalesced
//! batches from a bounded FIFO queue; admission control refuses work
//! up front; shutdown drains everything admitted; a panicking lane
//! retires itself and fails only the requests it was carrying.
//!
//! ```text
//! submit() ──admission──▶ [bounded queue / Coalescer] ──▶ lane 0 ──▶
//!    │  over quota: Err        │ blocks submitters        lane 1 ──▶ scatter ──▶ Reply
//!    └──────────────▶ Reply    │ when full (PR 4 rule)    ...lanes()
//! ```
//!
//! **Exactly-once replies.** Every submission resolves to exactly one
//! [`Reply`]: an immediate rejection (over quota, shutting down, all
//! lanes dead, or a trivially empty request), a success carrying
//! per-pair results in request order, or a backend failure. The
//! shutdown and fault suites (`tests/serve_shutdown.rs`) pin this.
//!
//! **Bit-identical results.** Pairs are aligned independently by a
//! result-deterministic backend, so however the coalescer batches or
//! splits requests — and whichever lane runs each batch — a successful
//! reply equals aligning the request's pairs directly on the backend
//! (`tests/serve_equivalence.rs`, premerge step `serve-equivalence`).

use crate::admission::Admission;
use crate::coalesce::{Batch, Coalescer};
use crate::config::ServeConfig;
use crate::request::{AlignResponse, Reply, ReplyHandle, RequestId, ServeError, TenantId};
use logan_align::SeedExtendResult;
use logan_core::AlignBackend;
use logan_seq::readsim::ReadPair;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Lifetime counters of one server, returned by [`Server::shutdown`].
/// `submitted == completed + failed + over_quota + rejected_shutdown`
/// once the server has drained — the exactly-once ledger.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Requests submitted (including refused ones).
    pub submitted: usize,
    /// Requests answered with results.
    pub completed: usize,
    /// Requests answered with [`ServeError::BackendFailed`].
    pub failed: usize,
    /// Requests refused at admission ([`ServeError::OverQuota`]).
    pub over_quota: usize,
    /// Requests refused because shutdown had begun.
    pub rejected_shutdown: usize,
    /// Backend submissions issued.
    pub batches: usize,
    /// Pairs across all submissions.
    pub batched_pairs: usize,
    /// Submissions that coalesced more than one request.
    pub coalesced_batches: usize,
    /// Largest single submission, in pairs.
    pub max_batch_pairs: usize,
    /// Lanes that retired after a backend panic.
    pub lanes_retired: usize,
}

struct Assembly {
    tenant: TenantId,
    slots: Vec<Option<SeedExtendResult>>,
    filled: usize,
    batches: usize,
    tx: mpsc::Sender<Reply>,
}

struct QueueState {
    queue: Coalescer,
    /// Shutdown has begun: no new admissions, drain what is queued.
    closed: bool,
    /// Lanes still serving (decremented on panic retirement).
    alive: usize,
}

struct Shared {
    cfg: ServeConfig,
    backend: Arc<dyn AlignBackend>,
    state: Mutex<QueueState>,
    cv: Condvar,
    assemblies: Mutex<HashMap<RequestId, Assembly>>,
    admission: Admission,
    stats: Mutex<ServeStats>,
    next_id: AtomicU64,
}

impl Shared {
    /// Scatter one successful batch back to its requests; any request
    /// whose last outstanding pair this fills gets its (single) reply.
    fn complete_batch(&self, batch: &Batch, results: Vec<SeedExtendResult>) {
        debug_assert_eq!(results.len(), batch.pairs.len());
        let mut asm = self.assemblies.lock().expect("assembly table poisoned");
        let mut off = 0usize;
        for span in &batch.spans {
            let chunk = &results[off..off + span.len];
            off += span.len;
            // A request that already failed (another batch of it
            // panicked) has left the table; its surviving slices are
            // aligned and discarded.
            let Some(a) = asm.get_mut(&span.req) else {
                continue;
            };
            for (k, r) in chunk.iter().enumerate() {
                debug_assert!(a.slots[span.offset + k].is_none(), "pair filled twice");
                a.slots[span.offset + k] = Some(*r);
            }
            a.filled += span.len;
            a.batches += 1;
            if a.filled == a.slots.len() {
                let a = asm.remove(&span.req).expect("assembly vanished");
                let pairs = a.slots.len();
                let results = a
                    .slots
                    .into_iter()
                    .map(|s| s.expect("slot empty"))
                    .collect();
                let _ = a.tx.send(Ok(AlignResponse {
                    id: span.req,
                    results,
                    batches: a.batches,
                }));
                self.admission.release(a.tenant, pairs);
                self.stats.lock().expect("stats poisoned").completed += 1;
            }
        }
    }

    /// Fail one request (if it has not already been replied to):
    /// explicit error reply, quota released, counted.
    fn fail_request(&self, id: RequestId, detail: &str) {
        let mut asm = self.assemblies.lock().expect("assembly table poisoned");
        if let Some(a) = asm.remove(&id) {
            let _ = a.tx.send(Err(ServeError::BackendFailed {
                detail: detail.to_string(),
            }));
            self.admission.release(a.tenant, a.slots.len());
            self.stats.lock().expect("stats poisoned").failed += 1;
        }
    }

    fn bump_batch_stats(&self, batch: &Batch) {
        let mut stats = self.stats.lock().expect("stats poisoned");
        stats.batches += 1;
        stats.batched_pairs += batch.pairs.len();
        stats.coalesced_batches += batch.is_coalesced() as usize;
        stats.max_batch_pairs = stats.max_batch_pairs.max(batch.pairs.len());
    }

    /// One lane's serving loop: take a batch, align it, scatter the
    /// results; on a backend panic, fail the batch's requests, retire
    /// this lane, and — if it was the last — fail everything queued so
    /// nothing waits on a server that can no longer serve.
    fn serve_lane(&self, lane: usize) {
        loop {
            let batch = {
                let mut st = self.state.lock().expect("serve queue poisoned");
                loop {
                    if let Some(batch) = st.queue.next_batch() {
                        // Queue space freed: wake blocked submitters
                        // (and idle lanes, if pairs remain).
                        self.cv.notify_all();
                        break Some(batch);
                    }
                    if st.closed {
                        break None;
                    }
                    st = self
                        .cv
                        .wait(st)
                        .expect("serve queue poisoned while waiting");
                }
            };
            let Some(batch) = batch else {
                return; // drained and closed: graceful exit
            };
            self.bump_batch_stats(&batch);
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                self.backend.align_block_on(lane, &batch.pairs)
            }));
            match outcome {
                Ok((results, _report)) => self.complete_batch(&batch, results),
                Err(payload) => {
                    let detail = panic_detail(&payload);
                    for span in &batch.spans {
                        self.fail_request(span.req, &detail);
                    }
                    let orphans = {
                        let mut st = self.state.lock().expect("serve queue poisoned");
                        st.alive -= 1;
                        self.stats.lock().expect("stats poisoned").lanes_retired += 1;
                        let orphans = if st.alive == 0 {
                            // Last lane down: nobody is left to drain
                            // the queue — fail it rather than hang it.
                            st.queue.drain_requests()
                        } else {
                            Vec::new()
                        };
                        self.cv.notify_all();
                        orphans
                    };
                    for id in orphans {
                        self.fail_request(id, "all backend lanes retired after panics");
                    }
                    return; // this lane is done
                }
            }
        }
    }
}

fn panic_detail(payload: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("backend lane panicked: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("backend lane panicked: {s}")
    } else {
        "backend lane panicked".to_string()
    }
}

/// The always-on alignment service over one [`AlignBackend`]. Cheap to
/// share by reference across client threads ([`Server::submit`] takes
/// `&self`); consumed logically by [`Server::shutdown`], which is also
/// run by `Drop` so an abandoned server still drains and joins.
pub struct Server {
    shared: Arc<Shared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl Server {
    /// Start serving: validates `cfg`, then spawns one worker thread
    /// per backend lane ([`AlignBackend::lanes`]), each feeding its
    /// lane via [`AlignBackend::align_block_on`] — a fleet backend gets
    /// one server lane per member, a single device gets one.
    pub fn start(backend: Arc<dyn AlignBackend>, cfg: ServeConfig) -> Result<Server, String> {
        let cfg = cfg.validated()?;
        let lanes = backend.lanes().max(1);
        let shared = Arc::new(Shared {
            admission: Admission::new(cfg.quota_pairs),
            state: Mutex::new(QueueState {
                queue: Coalescer::new(cfg.batch_pairs),
                closed: false,
                alive: lanes,
            }),
            cv: Condvar::new(),
            assemblies: Mutex::new(HashMap::new()),
            stats: Mutex::new(ServeStats::default()),
            next_id: AtomicU64::new(0),
            cfg,
            backend,
        });
        let workers = (0..lanes)
            .map(|lane| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("logan-serve-lane-{lane}"))
                    .spawn(move || shared.serve_lane(lane))
                    .map_err(|e| format!("failed to spawn serve lane {lane}: {e}"))
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(Server {
            shared,
            workers: Mutex::new(workers),
        })
    }

    /// The configuration this server runs under.
    pub fn config(&self) -> &ServeConfig {
        &self.shared.cfg
    }

    /// Submit a request. Returns immediately with a [`ReplyHandle`]
    /// that will yield the request's single [`Reply`] — unless the
    /// bounded submission queue is full, in which case this call
    /// *blocks* until a lane frees space (the closed-loop backpressure
    /// rule: clients slow down rather than the queue growing without
    /// bound).
    ///
    /// Refusals are immediate replies: over-quota requests, requests
    /// after [`Server::shutdown`] began, requests after every lane
    /// retired. An empty request is answered immediately with empty
    /// results — there is nothing to align.
    pub fn submit(&self, tenant: TenantId, pairs: Vec<ReadPair>) -> ReplyHandle {
        let shared = &self.shared;
        let id = shared.next_id.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = mpsc::channel();
        let handle = ReplyHandle { id, rx };
        shared.stats.lock().expect("stats poisoned").submitted += 1;
        if pairs.is_empty() {
            let _ = tx.send(Ok(AlignResponse {
                id,
                results: Vec::new(),
                batches: 0,
            }));
            shared.stats.lock().expect("stats poisoned").completed += 1;
            return handle;
        }
        if let Err(refusal) = shared.admission.try_admit(tenant, pairs.len()) {
            let _ = tx.send(Err(refusal));
            shared.stats.lock().expect("stats poisoned").over_quota += 1;
            return handle;
        }
        // Admitted: hold quota until the single reply, whatever it is.
        let mut st = shared.state.lock().expect("serve queue poisoned");
        while st.queue.pending_requests() >= shared.cfg.queue_depth && !st.closed && st.alive > 0 {
            st = shared
                .cv
                .wait(st)
                .expect("serve queue poisoned while waiting");
        }
        if st.closed || st.alive == 0 {
            let reply = if st.closed {
                shared
                    .stats
                    .lock()
                    .expect("stats poisoned")
                    .rejected_shutdown += 1;
                Err(ServeError::ShuttingDown)
            } else {
                shared.stats.lock().expect("stats poisoned").failed += 1;
                Err(ServeError::BackendFailed {
                    detail: "all backend lanes retired after panics".into(),
                })
            };
            drop(st);
            shared.admission.release(tenant, pairs.len());
            let _ = tx.send(reply);
            return handle;
        }
        // Register the assembly before the queue sees the request, so a
        // fast lane cannot complete pairs that have nowhere to land.
        shared
            .assemblies
            .lock()
            .expect("assembly table poisoned")
            .insert(
                id,
                Assembly {
                    tenant,
                    slots: vec![None; pairs.len()],
                    filled: 0,
                    batches: 0,
                    tx,
                },
            );
        st.queue.push(id, pairs);
        shared.cv.notify_all();
        drop(st);
        handle
    }

    /// A submit taking the request struct (same semantics).
    pub fn submit_request(&self, request: crate::AlignRequest) -> ReplyHandle {
        self.submit(request.tenant, request.pairs)
    }

    /// Graceful shutdown: refuse new submissions, drain every queued
    /// and in-flight request to its reply, join the lanes, and return
    /// the lifetime stats. Idempotent — later calls just return the
    /// (final) stats again.
    pub fn shutdown(&self) -> ServeStats {
        {
            let mut st = self.shared.state.lock().expect("serve queue poisoned");
            st.closed = true;
            self.shared.cv.notify_all();
        }
        let workers: Vec<_> = self
            .workers
            .lock()
            .expect("worker table poisoned")
            .drain(..)
            .collect();
        for w in workers {
            let _ = w.join();
        }
        // Defensive sweep: with the lanes joined, every admitted
        // request must have been replied to. If one slipped through, a
        // late error reply still beats a client waiting forever.
        let leftovers: Vec<RequestId> = {
            let asm = self
                .shared
                .assemblies
                .lock()
                .expect("assembly table poisoned");
            debug_assert!(asm.is_empty(), "shutdown left unreplied assemblies");
            asm.keys().copied().collect()
        };
        for id in leftovers {
            self.shared
                .fail_request(id, "server shut down with the request unreplied");
        }
        self.shared.stats.lock().expect("stats poisoned").clone()
    }

    /// Lifetime counters so far (shutdown returns the final ledger).
    pub fn stats(&self) -> ServeStats {
        self.shared.stats.lock().expect("stats poisoned").clone()
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        let _ = self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use logan_align::{Engine, XDropCpuAligner};
    use logan_seq::readsim::PairSet;
    use logan_seq::Scoring;

    fn cpu_backend() -> Arc<dyn AlignBackend> {
        Arc::new(XDropCpuAligner::new(
            1,
            Scoring::default(),
            50,
            Engine::Scalar,
        ))
    }

    fn reqs(sizes: &[usize], seed: u64) -> Vec<Vec<ReadPair>> {
        sizes
            .iter()
            .enumerate()
            .map(|(i, &n)| PairSet::generate_with_lengths(n, 0.2, 150, 400, seed + i as u64).pairs)
            .collect()
    }

    #[test]
    fn serves_and_coalesces_under_a_slow_start() {
        let server = Server::start(
            cpu_backend(),
            ServeConfig {
                batch_pairs: 8,
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let requests = reqs(&[2, 3, 1, 4, 2], 11);
        let handles: Vec<_> = requests
            .iter()
            .map(|p| server.submit(0, p.clone()))
            .collect();
        for (h, pairs) in handles.into_iter().zip(&requests) {
            let resp = h.recv().expect("request failed");
            assert_eq!(resp.results.len(), pairs.len());
        }
        let stats = server.shutdown();
        assert_eq!(stats.completed, 5);
        assert_eq!(stats.batched_pairs, 12);
        assert_eq!(stats.submitted, 5);
    }

    #[test]
    fn empty_request_replies_immediately() {
        let server = Server::start(cpu_backend(), ServeConfig::default()).unwrap();
        let resp = server.submit(3, Vec::new()).recv().unwrap();
        assert!(resp.results.is_empty());
        assert_eq!(resp.batches, 0);
        assert_eq!(server.shutdown().completed, 1);
    }

    #[test]
    fn over_quota_is_an_immediate_explicit_reply() {
        let server = Server::start(
            cpu_backend(),
            ServeConfig {
                quota_pairs: 3,
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let pairs = reqs(&[4], 5).remove(0);
        match server.submit(9, pairs).recv() {
            Err(ServeError::OverQuota {
                tenant, requested, ..
            }) => assert_eq!((tenant, requested), (9, 4)),
            other => panic!("expected OverQuota, got {other:?}"),
        }
        let stats = server.shutdown();
        assert_eq!((stats.over_quota, stats.completed), (1, 0));
    }

    #[test]
    fn submit_after_shutdown_is_rejected() {
        let server = Server::start(cpu_backend(), ServeConfig::default()).unwrap();
        server.shutdown();
        let reply = server.submit(0, reqs(&[1], 3).remove(0)).recv();
        assert_eq!(reply, Err(ServeError::ShuttingDown));
        assert_eq!(server.stats().rejected_shutdown, 1);
    }
}
