//! Affine-gap alignment oracles (Gotoh 1982).
//!
//! Full-matrix affine-gap DP, kept deliberately simple: these are the
//! independent correctness oracles for the ksw2-style extension
//! ([`crate::ksw2`]) — with an unbounded band and a Z-drop too large to
//! fire, `ksw2_extend` must equal [`gotoh_extension_oracle`] exactly.

use crate::result::AlignmentResult;
use crate::NEG_INF;
use logan_seq::{AffineScoring, Seq};

/// Global affine-gap alignment score (Gotoh).
pub fn gotoh_global(query: &Seq, target: &Seq, sc: AffineScoring) -> AlignmentResult {
    let (m, n) = (query.len(), target.len());
    let q = query.as_slice();
    let t = target.as_slice();
    let (o, e) = (sc.gap_open, sc.gap_extend);

    // h = best ending anywhere, f = best ending in a vertical gap,
    // rolled row by row; eh = horizontal gap within the row.
    let mut h_prev: Vec<i32> = vec![0; n + 1];
    let mut f: Vec<i32> = vec![NEG_INF; n + 1];
    for j in 1..=n {
        h_prev[j] = -(o + j as i32 * e);
    }
    let mut h_cur = vec![0i32; n + 1];
    for i in 1..=m {
        h_cur[0] = -(o + i as i32 * e);
        let mut eh = NEG_INF;
        for j in 1..=n {
            eh = (eh - e).max(h_cur[j - 1] - o - e);
            f[j] = (f[j] - e).max(h_prev[j] - o - e);
            let diag = h_prev[j - 1] + sc.substitution(q[i - 1] == t[j - 1]);
            h_cur[j] = diag.max(eh).max(f[j]);
        }
        std::mem::swap(&mut h_prev, &mut h_cur);
    }
    AlignmentResult {
        score: h_prev[n],
        query_end: m,
        target_end: n,
        cells: m as u64 * n as u64,
    }
}

/// Affine-gap extension oracle: the maximum of `H(i, j)` over the whole
/// matrix with `H(0,0) = 0` — what ksw2 computes when neither its band
/// nor its Z-drop constrains anything. Tie-break: earliest row, then
/// smallest column (matching ksw2's per-cell strict-greater update).
pub fn gotoh_extension_oracle(query: &Seq, target: &Seq, sc: AffineScoring) -> AlignmentResult {
    let (m, n) = (query.len(), target.len());
    let q = query.as_slice();
    let t = target.as_slice();
    let (o, e) = (sc.gap_open, sc.gap_extend);

    let mut h_prev: Vec<i32> = vec![NEG_INF; n + 1];
    let mut f: Vec<i32> = vec![NEG_INF; n + 1];
    h_prev[0] = 0;
    for j in 1..=n {
        h_prev[j] = -(o + j as i32 * e);
    }
    let mut best = 0i32;
    let mut best_pos = (0usize, 0usize);
    let mut h_cur = vec![NEG_INF; n + 1];
    for i in 1..=m {
        h_cur[0] = -(o + i as i32 * e);
        let mut eh = NEG_INF;
        for j in 1..=n {
            eh = (eh - e).max(h_cur[j - 1] - o - e);
            f[j] = (f[j] - e).max(h_prev[j] - o - e);
            let diag = h_prev[j - 1] + sc.substitution(q[i - 1] == t[j - 1]);
            let h = diag.max(eh).max(f[j]);
            h_cur[j] = h;
            if h > best {
                best = h;
                best_pos = (i, j);
            }
        }
        std::mem::swap(&mut h_prev, &mut h_cur);
    }
    AlignmentResult {
        score: best,
        query_end: best_pos.0,
        target_end: best_pos.1,
        cells: m as u64 * n as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ksw2::{ksw2_extend, Ksw2Params};
    use logan_seq::readsim::random_seq;
    use logan_seq::{ErrorModel, ErrorProfile};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn seq(s: &str) -> Seq {
        Seq::from_str_strict(s).unwrap()
    }

    #[test]
    fn global_identical() {
        let s = seq("ACGTACGTAC");
        let r = gotoh_global(&s, &s, AffineScoring::default());
        assert_eq!(r.score, 20);
    }

    #[test]
    fn global_single_long_gap_cheaper_than_two() {
        // With open=4, extend=2: one 2-gap costs 8, two 1-gaps cost 12.
        let sc = AffineScoring::default();
        let q = seq("ACGTAAACGTACGT"); // AA inserted together
        let t = seq("ACGTACGTACGT");
        let r = gotoh_global(&q, &t, sc);
        assert_eq!(r.score, 12 * 2 - (4 + 2 * 2));
    }

    #[test]
    fn extension_oracle_nonnegative_and_bounded() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            let a = random_seq(60, &mut rng);
            let b = random_seq(60, &mut rng);
            let r = gotoh_extension_oracle(&a, &b, AffineScoring::default());
            assert!(r.score >= 0);
            assert!(r.score <= 2 * 60);
        }
    }

    #[test]
    fn ksw2_equals_gotoh_oracle_when_unconstrained() {
        // The independent oracle check: band wider than the matrix and a
        // Z-drop that can never fire make ksw2 exact.
        let mut rng = StdRng::seed_from_u64(2);
        let model = ErrorModel::new(ErrorProfile::pacbio(0.15));
        for trial in 0..25 {
            let len = 20 + (trial * 11) % 120;
            let template = random_seq(len, &mut rng);
            let (a, _) = model.corrupt(&template, &mut rng);
            let (b, _) = model.corrupt(&template, &mut rng);
            let params = Ksw2Params {
                band: Some(a.len() + b.len()),
                zdrop: i32::MAX / 4,
                ..Ksw2Params::with_zdrop(0)
            };
            let k = ksw2_extend(&a, &b, params);
            let oracle = gotoh_extension_oracle(&a, &b, params.scoring);
            assert_eq!(k.score, oracle.score, "trial {trial}");
            assert_eq!(
                (k.query_end, k.target_end),
                (oracle.query_end, oracle.target_end),
                "trial {trial}"
            );
        }
    }

    #[test]
    fn ksw2_band_never_beats_oracle() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..15 {
            let a = random_seq(80, &mut rng);
            let b = random_seq(80, &mut rng);
            for z in [10, 50, 200] {
                let k = ksw2_extend(&a, &b, Ksw2Params::with_zdrop(z));
                let oracle = gotoh_extension_oracle(&a, &b, AffineScoring::default());
                assert!(k.score <= oracle.score, "banded can never exceed exact");
            }
        }
    }

    #[test]
    fn extension_at_least_global() {
        // The extension optimum dominates the global score (it may stop
        // early where global must pay trailing gaps).
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..10 {
            let a = random_seq(50, &mut rng);
            let b = random_seq(55, &mut rng);
            let sc = AffineScoring::default();
            let ext = gotoh_extension_oracle(&a, &b, sc);
            let glob = gotoh_global(&a, &b, sc);
            assert!(ext.score >= glob.score);
        }
    }
}
