//! `streaming` — peak-memory and wall-clock of the streaming BELLA
//! pipeline against the monolithic one (ISSUE 4's tentpole numbers; not
//! a paper artifact).
//!
//! Two sweeps on E. coli-like read sets:
//!
//! 1. **input sweep** at a fixed batch budget — the monolithic peak
//!    grows with the input (full k-mer table + every candidate pair
//!    materialized with cloned sequences), while the streaming peak
//!    grows only by the resident read store + index;
//! 2. **batch sweep** at a fixed input — the streaming peak moves with
//!    `batch_reads`, demonstrating that the candidate/alignment stages
//!    are O(batch).
//!
//! Peak memory is measured by a global counting allocator (live bytes,
//! resettable high-water mark), so the numbers are exact allocation
//! peaks rather than RSS snapshots. Both measured regions include the
//! pipeline's own copy of the reads (the monolithic region clones the
//! sequence list; the streaming region ingests batches into its store),
//! so the comparison is apples to apples.
//!
//! Scale via `LOGAN_BELLA_SCALE` / `LOGAN_SEED` as for table4/table5;
//! results land in `results/streaming.json`.

use logan_bella::{BellaConfig, BellaPipeline, PipelineBudget};
use logan_bench::memprobe::{measure, mib, PeakAlloc};
use logan_bench::{heading, write_json, BenchScale, Table};
use logan_seq::readsim::ReadSimulator;
use logan_seq::{ErrorProfile, Seq};
use serde::Serialize;

#[global_allocator]
static PEAK_ALLOC: PeakAlloc = PeakAlloc;

#[derive(Serialize)]
struct Row {
    mode: String,
    reads: usize,
    candidates: usize,
    batch_reads: usize,
    shards: usize,
    peak_mib: f64,
    wall_s: f64,
}

fn read_seqs(genome_len: usize, seed: u64) -> Vec<Seq> {
    let sim = ReadSimulator {
        read_len: (800, 1600),
        depth: 12.0,
        errors: ErrorProfile::pacbio(0.10),
        ..ReadSimulator::uniform(genome_len, 12.0)
    };
    let rs = sim.generate(seed);
    rs.reads.iter().map(|r| r.seq.clone()).collect()
}

fn config(budget: PipelineBudget) -> BellaConfig {
    BellaConfig {
        error_rate: 0.10,
        depth: 12.0,
        min_overlap: 1000,
        budget,
        ..BellaConfig::with_x(50)
    }
}

fn run_modes(
    seqs: &[Seq],
    budgets: &[PipelineBudget],
    backend: &logan_align::XDropCpuAligner,
    rows: &mut Vec<Row>,
) {
    let (mono, mono_peak, mono_wall) = measure(|| {
        let owned: Vec<Seq> = seqs.to_vec();
        BellaPipeline::new(config(PipelineBudget::default())).run(&owned, backend)
    });
    rows.push(Row {
        mode: "monolithic".into(),
        reads: seqs.len(),
        candidates: mono.stats.candidates,
        batch_reads: 0,
        shards: 0,
        peak_mib: mib(mono_peak),
        wall_s: mono_wall,
    });
    for &budget in budgets {
        let pipeline = BellaPipeline::new(config(budget));
        let (out, peak, wall) = measure(|| {
            pipeline.run_streaming(
                logan_seq::readsim::seq_batches(seqs, budget.batch_reads),
                backend,
            )
        });
        assert_eq!(
            out.overlaps, mono.overlaps,
            "streaming must be bit-identical to monolithic"
        );
        rows.push(Row {
            mode: "streaming".into(),
            reads: seqs.len(),
            candidates: out.stats.candidates,
            batch_reads: budget.batch_reads,
            shards: budget.shards,
            peak_mib: mib(peak),
            wall_s: wall,
        });
    }
}

fn main() {
    let scale = BenchScale::from_env();
    // Base genome ≈ 18.6 kb at the default 0.004 scale; the input sweep
    // doubles it twice.
    let base_len = ((4_641_652f64 * scale.bella_scale) as usize).max(12_000);
    let aligner = logan_align::XDropCpuAligner::new(
        4,
        logan_seq::Scoring::default(),
        50,
        logan_align::Engine::from_env(),
    );
    let mut rows = Vec::new();

    let fixed = PipelineBudget {
        batch_reads: 128,
        shards: 8,
        inflight_blocks: 2,
    };
    for mult in [1usize, 2, 4] {
        let seqs = read_seqs(base_len * mult, scale.seed);
        eprintln!("[streaming] input sweep x{mult}: {} reads", seqs.len());
        run_modes(&seqs, &[fixed], &aligner, &mut rows);
    }
    let seqs = read_seqs(base_len * 4, scale.seed);
    for batch_reads in [32, 512] {
        eprintln!("[streaming] batch sweep: batch_reads={batch_reads}");
        let budget = PipelineBudget {
            batch_reads,
            ..fixed
        };
        run_modes(&seqs[..], &[budget], &aligner, &mut rows);
    }
    // The batch-sweep rows re-measure the monolithic baseline; keep the
    // duplicates out of the artifact (wall jitter aside they repeat).
    let mut seen_mono = std::collections::HashSet::new();
    rows.retain(|r| r.mode != "monolithic" || seen_mono.insert(r.reads));

    heading("Streaming vs monolithic BELLA pipeline (CPU backend, exact allocation peaks)");
    let mut t = Table::new(&[
        "mode",
        "reads",
        "candidates",
        "batch",
        "shards",
        "peak (MiB)",
        "wall (s)",
    ]);
    for r in &rows {
        t.row(vec![
            r.mode.clone(),
            r.reads.to_string(),
            r.candidates.to_string(),
            if r.batch_reads == 0 {
                "-".into()
            } else {
                r.batch_reads.to_string()
            },
            if r.shards == 0 {
                "-".into()
            } else {
                r.shards.to_string()
            },
            format!("{:.1}", r.peak_mib),
            format!("{:.2}", r.wall_s),
        ]);
    }
    println!("{}", t.render());
    write_json("streaming", &rows);
}
